package analysis

import (
	"math"
	"math/rand"
	"testing"

	"anton/internal/vec"
)

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3.1, 4.9, 7.1, 8.9}
	slope, icept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 0.05 || math.Abs(icept-1) > 0.15 {
		t.Errorf("fit: slope %g intercept %g", slope, icept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestEnergyDrift(t *testing.T) {
	// 0.01 kcal/mol per 1000 fs on 100 DoF = 1e-5 kcal/mol/fs
	// = 1e4 kcal/mol/us = 100 kcal/mol/DoF/us.
	times := []float64{0, 1000, 2000, 3000}
	energies := []float64{50, 50.01, 50.02, 50.03}
	d, err := EnergyDrift(times, energies, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-100) > 1e-6 {
		t.Errorf("drift: got %g, want 100", d)
	}
	if _, err := EnergyDrift(times, energies, 0); err == nil {
		t.Error("zero DoF accepted")
	}
}

func TestForceError(t *testing.T) {
	ref := []vec.V3{{X: 3}, {Y: 4}}
	same := []vec.V3{{X: 3}, {Y: 4}}
	e, err := ForceError(same, ref)
	if err != nil || e != 0 {
		t.Errorf("identical forces: error %g (%v)", e, err)
	}
	off := []vec.V3{{X: 3.05}, {Y: 4}}
	e, _ = ForceError(off, ref)
	want := 0.05 / 5.0
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("force error: got %g, want %g", e, want)
	}
	if _, err := ForceError(ref, []vec.V3{{X: 1}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestSuperposeRecoversRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []vec.V3
	for i := 0; i < 20; i++ {
		pts = append(pts, vec.V3{X: rng.NormFloat64() * 3, Y: rng.NormFloat64() * 3, Z: rng.NormFloat64() * 3})
	}
	rot := vec.RotationZ(0.7)
	shift := vec.V3{X: 5, Y: -2, Z: 1}
	moved := make([]vec.V3, len(pts))
	for i := range pts {
		moved[i] = rot.MulV(pts[i]).Add(shift)
	}
	_, rmsd, err := Superpose(pts, moved, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 1e-10 {
		t.Errorf("rigid transform not removed: rmsd %g", rmsd)
	}
}

func TestRMSDWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b []vec.V3
	for i := 0; i < 50; i++ {
		p := vec.V3{X: rng.NormFloat64() * 4, Y: rng.NormFloat64() * 4, Z: rng.NormFloat64() * 4}
		a = append(a, p)
		b = append(b, p.Add(vec.V3{X: rng.NormFloat64() * 0.1, Y: rng.NormFloat64() * 0.1, Z: rng.NormFloat64() * 0.1}))
	}
	r, err := RMSD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > 0.3 {
		t.Errorf("noisy rmsd %g out of expected range", r)
	}
}

func TestOrderParameterRigid(t *testing.T) {
	// A fixed bond direction has S^2 = 1.
	series := BondVectorSeries{}
	u := vec.V3{X: 1, Y: 2, Z: -0.5}
	for i := 0; i < 100; i++ {
		series = append(series, u)
	}
	s2, err := OrderParameter(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-1) > 1e-12 {
		t.Errorf("rigid S2: got %g", s2)
	}
}

func TestOrderParameterIsotropic(t *testing.T) {
	// An isotropically tumbling bond has S^2 -> 0.
	rng := rand.New(rand.NewSource(7))
	series := BondVectorSeries{}
	for i := 0; i < 20000; i++ {
		v := vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		series = append(series, v)
	}
	s2, _ := OrderParameter(series)
	if s2 > 0.05 {
		t.Errorf("isotropic S2: got %g, want ~0", s2)
	}
}

func TestOrderParameterConeModel(t *testing.T) {
	// Diffusion in a cone of half-angle theta has the closed form
	// S = cos(theta)*(1+cos(theta))/2; check the wobble ordering: larger
	// cones give smaller S^2.
	rng := rand.New(rand.NewSource(9))
	prev := 1.1
	for _, theta := range []float64{0.2, 0.5, 0.9} {
		series := BondVectorSeries{}
		for i := 0; i < 30000; i++ {
			// Uniform within the cone about +z.
			c := 1 - rng.Float64()*(1-math.Cos(theta))
			s := math.Sqrt(1 - c*c)
			phi := rng.Float64() * 2 * math.Pi
			series = append(series, vec.V3{X: s * math.Cos(phi), Y: s * math.Sin(phi), Z: c})
		}
		s2, _ := OrderParameter(series)
		sExpected := math.Cos(theta) * (1 + math.Cos(theta)) / 2
		if math.Abs(s2-sExpected*sExpected) > 0.03 {
			t.Errorf("cone %g: S2 %g, closed form %g", theta, s2, sExpected*sExpected)
		}
		if s2 >= prev {
			t.Errorf("S2 should decrease with cone angle")
		}
		prev = s2
	}
}

func TestOrderParametersFromTrajectory(t *testing.T) {
	// Two bonds: one rigid, one wobbling; the whole frame also translates
	// and rotates, which superposition must remove.
	rng := rand.New(rand.NewSource(11))
	base := []vec.V3{
		{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, // rigid bond 0-1
		{X: 3, Y: 0, Z: 0}, {X: 4, Y: 0, Z: 0}, // wobbling bond 2-3
		{X: 0, Y: 3, Z: 0}, {X: 3, Y: 3, Z: 0}, {X: 1.5, Y: 5, Z: 0}, // alignment anchors
	}
	var frames [][]vec.V3
	for f := 0; f < 400; f++ {
		rot := vec.RotationZ(rng.Float64() * 2 * math.Pi)
		shift := vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		frame := make([]vec.V3, len(base))
		for i, p := range base {
			frame[i] = rot.MulV(p).Add(shift)
		}
		// Wobble bond 2-3 in the body frame before the global motion:
		// redo atom 3 with a cone wobble.
		ang := rng.NormFloat64() * 0.5
		wob := vec.V3{X: math.Cos(ang), Y: math.Sin(ang), Z: 0}
		frame[3] = rot.MulV(base[2].Add(wob)).Add(shift)
		frames = append(frames, frame)
	}
	s2, err := OrderParametersFromTrajectory(frames, []int{0, 2, 4, 5, 6}, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if s2[0] < 0.98 {
		t.Errorf("rigid bond S2 %g, want ~1", s2[0])
	}
	if s2[1] > 0.9 || s2[1] < 0.3 {
		t.Errorf("wobbling bond S2 %g, want intermediate", s2[1])
	}
	if s2[1] >= s2[0] {
		t.Error("wobbling bond should have lower S2 than rigid bond")
	}
}

func TestNativeContactsAndQ(t *testing.T) {
	// A square of 4 points with unit sides: contacts at distance 1 with
	// minSep 1: (0,1),(1,2),(2,3) and diagonals sqrt(2) excluded by
	// cutoff 1.2; (0,3) at distance 1 but sep 3.
	ref := []vec.V3{{X: 0}, {X: 1}, {X: 1, Y: 1}, {Y: 1}}
	contacts := NativeContacts(ref, 1.2, 1)
	if len(contacts) != 3+1 { // includes (0,3) at separation 3
		t.Fatalf("contacts: got %v", contacts)
	}
	// Fully native: Q = 1.
	if q := ContactFraction(ref, ref, contacts, 1.2); q != 1 {
		t.Errorf("native Q: got %g", q)
	}
	// Stretch one side: Q drops.
	cur := append([]vec.V3(nil), ref...)
	cur[1] = vec.V3{X: 2.5}
	q := ContactFraction(ref, cur, contacts, 1.2)
	if q >= 1 || q <= 0 {
		t.Errorf("stretched Q: got %g", q)
	}
}

func TestTransitionCount(t *testing.T) {
	q := []float64{0.9, 0.85, 0.5, 0.2, 0.15, 0.5, 0.9, 0.88, 0.1, 0.9}
	// folded >= 0.8, unfolded <= 0.3: transitions F->U, U->F, F->U, U->F = 4.
	if got := TransitionCount(q, 0.8, 0.3); got != 4 {
		t.Errorf("transitions: got %d, want 4", got)
	}
	// Hysteresis: mid-range wiggles don't count.
	q2 := []float64{0.9, 0.5, 0.6, 0.5, 0.9}
	if got := TransitionCount(q2, 0.8, 0.3); got != 0 {
		t.Errorf("hysteresis violated: %d transitions", got)
	}
}

func TestRadiusOfGyration(t *testing.T) {
	// Two unit masses at +-1 on x: Rg = 1.
	r := []vec.V3{{X: -1}, {X: 1}}
	m := []float64{1, 1}
	if rg := RadiusOfGyration(r, m); math.Abs(rg-1) > 1e-14 {
		t.Errorf("Rg: got %g", rg)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Errorf("mean: %g", Mean(x))
	}
	if math.Abs(Variance(x)-1.25) > 1e-14 {
		t.Errorf("variance: %g", Variance(x))
	}
}
