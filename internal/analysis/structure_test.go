package analysis

import (
	"math"
	"math/rand"
	"testing"

	"anton/internal/vec"
)

func TestRDFIdealGasIsFlat(t *testing.T) {
	// Uniform random points: g(r) ~ 1 everywhere.
	box := vec.Cube(20)
	rng := rand.New(rand.NewSource(3))
	var frames [][]vec.V3
	sel := make([]int, 200)
	for i := range sel {
		sel[i] = i
	}
	for f := 0; f < 10; f++ {
		frame := make([]vec.V3, 200)
		for i := range frame {
			frame[i] = vec.V3{X: rng.Float64() * 20, Y: rng.Float64() * 20, Z: rng.Float64() * 20}
		}
		frames = append(frames, frame)
	}
	r, g, err := RDF(frames, box, sel, sel, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the first couple of bins (poor statistics), g ~ 1.
	for b := 4; b < len(g); b++ {
		if math.Abs(g[b]-1) > 0.35 {
			t.Errorf("ideal gas g(%.2f) = %.2f, want ~1", r[b], g[b])
		}
	}
}

func TestRDFLatticePeaks(t *testing.T) {
	// A perfect cubic lattice with spacing a: sharp peak at r = a.
	box := vec.Cube(16)
	var frame []vec.V3
	const a = 4.0
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				frame = append(frame, vec.V3{X: float64(x) * a, Y: float64(y) * a, Z: float64(z) * a})
			}
		}
	}
	sel := make([]int, len(frame))
	for i := range sel {
		sel[i] = i
	}
	r, g, err := RDF([][]vec.V3{frame}, box, sel, sel, 7.9, 64)
	if err != nil {
		t.Fatal(err)
	}
	pos, height, ok := FirstPeak(r, g, 1.5)
	if !ok {
		t.Fatal("no peak found for a lattice")
	}
	if math.Abs(pos-a) > 0.2 {
		t.Errorf("first peak at %.2f, want %.1f", pos, a)
	}
	if height < 5 {
		t.Errorf("lattice peak height %.1f implausibly low", height)
	}
}

func TestRDFErrors(t *testing.T) {
	box := vec.Cube(10)
	if _, _, err := RDF(nil, box, []int{0}, []int{0}, 5, 10); err == nil {
		t.Error("empty frames accepted")
	}
	if _, _, err := RDF([][]vec.V3{{{X: 1}}}, box, []int{0}, []int{0}, -1, 10); err == nil {
		t.Error("negative range accepted")
	}
}

func TestMSDBallistic(t *testing.T) {
	// Constant-velocity motion: MSD(t) = (v*t)^2.
	var frames [][]vec.V3
	v := vec.V3{X: 0.1}
	for f := 0; f < 20; f++ {
		frames = append(frames, []vec.V3{v.Scale(float64(f))})
	}
	msd, err := MeanSquareDisplacement(frames, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for lag := 1; lag < len(msd); lag++ {
		want := math.Pow(0.1*float64(lag), 2)
		if math.Abs(msd[lag]-want) > 1e-12 {
			t.Fatalf("MSD(%d) = %g, want %g", lag, msd[lag], want)
		}
	}
}

func TestDiffusionCoefficientRandomWalk(t *testing.T) {
	// A discrete 3D random walk with step s every dt: D = s^2/(6*dt).
	rng := rand.New(rand.NewSource(7))
	const (
		nWalkers = 400
		nSteps   = 120
		s        = 0.5
		dt       = 10.0
	)
	pos := make([]vec.V3, nWalkers)
	var frames [][]vec.V3
	var times []float64
	for step := 0; step < nSteps; step++ {
		frames = append(frames, append([]vec.V3(nil), pos...))
		times = append(times, float64(step)*dt)
		for i := range pos {
			axis := rng.Intn(3)
			sign := float64(rng.Intn(2)*2 - 1)
			switch axis {
			case 0:
				pos[i].X += sign * s
			case 1:
				pos[i].Y += sign * s
			case 2:
				pos[i].Z += sign * s
			}
		}
	}
	sel := make([]int, nWalkers)
	for i := range sel {
		sel[i] = i
	}
	msd, err := MeanSquareDisplacement(frames, sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffusionCoefficient(times, msd)
	if err != nil {
		t.Fatal(err)
	}
	want := s * s / (6 * dt)
	if math.Abs(d-want) > 0.25*want {
		t.Errorf("D = %g, want %g", d, want)
	}
}

func TestVelocityAutocorrelation(t *testing.T) {
	// Constant velocities: C(t) = 1 for all lags.
	var frames [][]vec.V3
	for f := 0; f < 10; f++ {
		frames = append(frames, []vec.V3{{X: 0.3}, {Y: -0.2}})
	}
	acf, err := VelocityAutocorrelation(frames, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for lag, c := range acf {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("constant-velocity ACF at lag %d: %g", lag, c)
		}
	}
	// Alternating velocities: C oscillates between +1 and -1.
	frames = nil
	for f := 0; f < 8; f++ {
		sign := float64(1 - 2*(f%2))
		frames = append(frames, []vec.V3{{X: sign}})
	}
	acf, _ = VelocityAutocorrelation(frames, []int{0}, 1)
	if math.Abs(acf[1]+1) > 1e-12 || math.Abs(acf[2]-1) > 1e-12 {
		t.Errorf("alternating ACF wrong: %v", acf[:3])
	}
	// Random velocities decorrelate.
	rng := rand.New(rand.NewSource(5))
	frames = nil
	for f := 0; f < 50; f++ {
		fr := make([]vec.V3, 300)
		for i := range fr {
			fr[i] = vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		frames = append(frames, fr)
	}
	sel := make([]int, 300)
	for i := range sel {
		sel[i] = i
	}
	acf, _ = VelocityAutocorrelation(frames, sel, 1)
	if math.Abs(acf[5]) > 0.1 {
		t.Errorf("random ACF at lag 5: %g", acf[5])
	}
}
