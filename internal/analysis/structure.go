package analysis

import (
	"fmt"
	"math"

	"anton/internal/vec"
)

// RDF computes the radial distribution function g(r) between two atom
// selections over a set of frames. g(r) ~ 1 at long range for a liquid;
// the O-O RDF of water shows its characteristic first peak near 2.8 Å —
// the standard structural check that a water model behaves like a liquid.
func RDF(frames [][]vec.V3, box vec.Box, selA, selB []int, rMax float64, bins int) (r []float64, g []float64, err error) {
	if len(frames) == 0 || len(selA) == 0 || len(selB) == 0 {
		return nil, nil, fmt.Errorf("analysis: empty RDF input")
	}
	if bins < 2 || rMax <= 0 {
		return nil, nil, fmt.Errorf("analysis: invalid RDF bins/range")
	}
	if rMax > box.L.MaxAbs()/2 {
		rMax = box.L.MaxAbs() / 2
	}
	dr := rMax / float64(bins)
	counts := make([]float64, bins)
	same := sameSelection(selA, selB)
	pairsPerFrame := float64(len(selA)) * float64(len(selB))
	if same {
		pairsPerFrame = float64(len(selA)) * float64(len(selA)-1)
	}

	for _, frame := range frames {
		for _, i := range selA {
			for _, j := range selB {
				if i == j {
					continue
				}
				d := box.Dist(frame[i], frame[j])
				if d >= rMax {
					continue
				}
				counts[int(d/dr)]++
			}
		}
	}

	// Normalize: ideal-gas pair count in each shell.
	rho := pairsPerFrame / box.Volume() // pair density
	nFrames := float64(len(frames))
	r = make([]float64, bins)
	g = make([]float64, bins)
	for b := 0; b < bins; b++ {
		rLo := float64(b) * dr
		rHi := rLo + dr
		shell := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo)
		ideal := rho * shell * nFrames
		r[b] = rLo + dr/2
		if ideal > 0 {
			g[b] = counts[b] / ideal
		}
	}
	return r, g, nil
}

func sameSelection(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FirstPeak returns the location and height of the first maximum of g(r)
// above the given threshold.
func FirstPeak(r, g []float64, threshold float64) (pos, height float64, ok bool) {
	for i := 1; i < len(g)-1; i++ {
		if g[i] > threshold && g[i] >= g[i-1] && g[i] >= g[i+1] {
			return r[i], g[i], true
		}
	}
	return 0, 0, false
}

// MeanSquareDisplacement computes MSD(t) from unwrapped trajectories
// (frames of positions without periodic wrapping), averaged over the
// selection and over time origins with the given stride.
func MeanSquareDisplacement(frames [][]vec.V3, sel []int, originStride int) ([]float64, error) {
	if len(frames) < 2 || len(sel) == 0 {
		return nil, fmt.Errorf("analysis: need >=2 frames and a selection")
	}
	if originStride < 1 {
		originStride = 1
	}
	n := len(frames)
	msd := make([]float64, n)
	norm := make([]float64, n)
	for origin := 0; origin < n-1; origin += originStride {
		for lag := 1; origin+lag < n; lag++ {
			var s float64
			for _, a := range sel {
				s += frames[origin+lag][a].Sub(frames[origin][a]).Norm2()
			}
			msd[lag] += s / float64(len(sel))
			norm[lag]++
		}
	}
	for lag := 1; lag < n; lag++ {
		if norm[lag] > 0 {
			msd[lag] /= norm[lag]
		}
	}
	return msd, nil
}

// DiffusionCoefficient fits D from the long-time slope of MSD(t) via the
// Einstein relation MSD = 6*D*t, using the second half of the series.
// times in fs, MSD in Å^2: D in Å^2/fs (multiply by 1e-1 for cm^2/s...
// 1 Å^2/fs = 1e-16 cm^2 / 1e-15 s = 1e-1 cm^2/s).
func DiffusionCoefficient(timesFs, msd []float64) (float64, error) {
	if len(timesFs) != len(msd) || len(msd) < 4 {
		return 0, fmt.Errorf("analysis: need matched MSD series of >=4 points")
	}
	half := len(msd) / 2
	slope, _, err := LinearFit(timesFs[half:], msd[half:])
	if err != nil {
		return 0, err
	}
	return slope / 6, nil
}

// VelocityAutocorrelation computes the normalized velocity
// autocorrelation function C(t) = <v(0).v(t)>/<v(0).v(0)> from velocity
// frames, averaged over atoms and time origins. Its decay time reflects
// the collision rate; its integral gives the diffusion coefficient by
// Green-Kubo.
func VelocityAutocorrelation(frames [][]vec.V3, sel []int, originStride int) ([]float64, error) {
	if len(frames) < 2 || len(sel) == 0 {
		return nil, fmt.Errorf("analysis: need >=2 velocity frames and a selection")
	}
	if originStride < 1 {
		originStride = 1
	}
	n := len(frames)
	acf := make([]float64, n)
	norm := make([]float64, n)
	for origin := 0; origin < n; origin += originStride {
		for lag := 0; origin+lag < n; lag++ {
			var s float64
			for _, a := range sel {
				s += frames[origin][a].Dot(frames[origin+lag][a])
			}
			acf[lag] += s / float64(len(sel))
			norm[lag]++
		}
	}
	for lag := 0; lag < n; lag++ {
		if norm[lag] > 0 {
			acf[lag] /= norm[lag]
		}
	}
	if acf[0] == 0 {
		return nil, fmt.Errorf("analysis: zero velocities")
	}
	c0 := acf[0]
	for lag := range acf {
		acf[lag] /= c0
	}
	return acf, nil
}
