package analysis

import (
	"fmt"
	"math"

	"anton/internal/vec"
)

// Superpose computes the optimal rigid-body rotation+translation mapping
// mobile onto target (Horn's quaternion method), returning the rotated,
// translated copy of mobile and the RMSD after superposition. Both sets
// must have equal length; weights may be nil for uniform weighting.
func Superpose(target, mobile []vec.V3, weights []float64) ([]vec.V3, float64, error) {
	n := len(target)
	if n == 0 || n != len(mobile) {
		return nil, 0, fmt.Errorf("analysis: mismatched point sets %d/%d", len(target), len(mobile))
	}
	w := weights
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}
	var wSum float64
	var cT, cM vec.V3
	for i := 0; i < n; i++ {
		wSum += w[i]
		cT = cT.Add(target[i].Scale(w[i]))
		cM = cM.Add(mobile[i].Scale(w[i]))
	}
	cT = cT.Scale(1 / wSum)
	cM = cM.Scale(1 / wSum)

	// Covariance matrix of centered coordinates.
	var sxx, sxy, sxz, syx, syy, syz, szx, szy, szz float64
	for i := 0; i < n; i++ {
		a := mobile[i].Sub(cM)
		b := target[i].Sub(cT)
		sxx += w[i] * a.X * b.X
		sxy += w[i] * a.X * b.Y
		sxz += w[i] * a.X * b.Z
		syx += w[i] * a.Y * b.X
		syy += w[i] * a.Y * b.Y
		syz += w[i] * a.Y * b.Z
		szx += w[i] * a.Z * b.X
		szy += w[i] * a.Z * b.Y
		szz += w[i] * a.Z * b.Z
	}
	// Horn's symmetric 4x4 key matrix.
	k := [4][4]float64{
		{sxx + syy + szz, syz - szy, szx - sxz, sxy - syx},
		{syz - szy, sxx - syy - szz, sxy + syx, szx + sxz},
		{szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy},
		{sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz},
	}
	q, err := maxEigenvector4(k)
	if err != nil {
		return nil, 0, err
	}
	rot := quatToRot(q)

	out := make([]vec.V3, n)
	var msd float64
	for i := 0; i < n; i++ {
		p := rot.MulV(mobile[i].Sub(cM)).Add(cT)
		out[i] = p
		msd += w[i] * p.Sub(target[i]).Norm2()
	}
	return out, math.Sqrt(msd / wSum), nil
}

// RMSD returns the minimum rmsd between two point sets over rigid-body
// motions.
func RMSD(a, b []vec.V3) (float64, error) {
	_, r, err := Superpose(a, b, nil)
	return r, err
}

// maxEigenvector4 finds the eigenvector of the largest eigenvalue of a
// symmetric 4x4 matrix via shifted power iteration.
func maxEigenvector4(k [4][4]float64) ([4]float64, error) {
	// Shift to make the target eigenvalue the largest in magnitude:
	// add lambda_max bound (Gershgorin) to the diagonal.
	bound := 0.0
	for i := 0; i < 4; i++ {
		row := 0.0
		for j := 0; j < 4; j++ {
			row += math.Abs(k[i][j])
		}
		if row > bound {
			bound = row
		}
	}
	for i := 0; i < 4; i++ {
		k[i][i] += bound
	}
	v := [4]float64{1, 0.02, 0.013, 0.007} // deterministic, unlikely orthogonal
	for iter := 0; iter < 500; iter++ {
		var nv [4]float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				nv[i] += k[i][j] * v[j]
			}
		}
		norm := math.Sqrt(nv[0]*nv[0] + nv[1]*nv[1] + nv[2]*nv[2] + nv[3]*nv[3])
		if norm == 0 {
			return v, fmt.Errorf("analysis: power iteration collapsed")
		}
		for i := range nv {
			nv[i] /= norm
		}
		diff := 0.0
		for i := range nv {
			diff += math.Abs(nv[i] - v[i])
		}
		v = nv
		if diff < 1e-14 {
			break
		}
	}
	return v, nil
}

// quatToRot converts a unit quaternion (w, x, y, z) to a rotation matrix.
func quatToRot(q [4]float64) vec.T33 {
	w, x, y, z := q[0], q[1], q[2], q[3]
	return vec.T33{
		XX: w*w + x*x - y*y - z*z, XY: 2 * (x*y - w*z), XZ: 2 * (x*z + w*y),
		YX: 2 * (x*y + w*z), YY: w*w - x*x + y*y - z*z, YZ: 2 * (y*z - w*x),
		ZX: 2 * (x*z - w*y), ZY: 2 * (y*z + w*x), ZZ: w*w - x*x - y*y + z*z,
	}
}
