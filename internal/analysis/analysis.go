// Package analysis implements the measurements the paper reports:
// energy drift in kcal/mol/DoF/µs (Table 4), total and numerical force
// errors as fractions of the rms force (§5.2, Table 4), backbone amide
// order parameters S² estimated from trajectories (Figure 6, method of
// reference [24]), native-contact fractions for folding/unfolding
// detection (Figure 7), RMSD with optimal superposition, and radius of
// gyration.
package analysis

import (
	"fmt"
	"math"

	"anton/internal/vec"
)

// LinearFit returns the least-squares slope and intercept of y(x).
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0, 0, fmt.Errorf("analysis: need >= 2 matched points, got %d/%d", len(x), len(y))
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("analysis: degenerate x values")
	}
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return slope, intercept, nil
}

// EnergyDrift computes the drift rate of a total-energy time series in
// kcal/mol/DoF/µs — the paper's Table 4 metric. times are in femtoseconds.
func EnergyDrift(timesFs, energies []float64, dof int) (float64, error) {
	if dof <= 0 {
		return 0, fmt.Errorf("analysis: non-positive DoF %d", dof)
	}
	slope, _, err := LinearFit(timesFs, energies) // kcal/mol per fs
	if err != nil {
		return 0, err
	}
	return math.Abs(slope) * 1e9 / float64(dof), nil // per µs per DoF
}

// ForceError returns the rms deviation between two force sets as a
// fraction of the rms reference force — the paper's "total force error"
// (vs a conservative reference) or "numerical force error" (vs the same
// parameters in double precision), Table 4.
func ForceError(forces, reference []vec.V3) (float64, error) {
	if len(forces) != len(reference) || len(forces) == 0 {
		return 0, fmt.Errorf("analysis: mismatched force sets %d/%d", len(forces), len(reference))
	}
	var num, den float64
	for i := range forces {
		num += forces[i].Sub(reference[i]).Norm2()
		den += reference[i].Norm2()
	}
	if den == 0 {
		return 0, fmt.Errorf("analysis: zero reference forces")
	}
	return math.Sqrt(num / den), nil
}

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance.
func Variance(x []float64) float64 {
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	if len(x) == 0 {
		return 0
	}
	return s / float64(len(x))
}

// RadiusOfGyration returns sqrt(sum m (r - com)^2 / sum m) for the given
// selection (mass-weighted).
func RadiusOfGyration(r []vec.V3, masses []float64) float64 {
	var com vec.V3
	var mTot float64
	for i := range r {
		com = com.Add(r[i].Scale(masses[i]))
		mTot += masses[i]
	}
	if mTot == 0 {
		return 0
	}
	com = com.Scale(1 / mTot)
	var s float64
	for i := range r {
		s += masses[i] * r[i].Sub(com).Norm2()
	}
	return math.Sqrt(s / mTot)
}
