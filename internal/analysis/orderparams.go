package analysis

import (
	"fmt"

	"anton/internal/vec"
)

// BondVectorSeries is a trajectory of one bond's unit vectors after
// superposition of the molecule onto a reference frame (removing overall
// rotation, as in the method of paper reference [24]).
type BondVectorSeries []vec.V3

// OrderParameter computes the generalized backbone amide order parameter
// S² of a bond-vector series:
//
//	S² = (3/2) * sum_{a,b in xyz} <u_a u_b>² - 1/2
//
// which is the long-time plateau of the internal P2 autocorrelation
// function. S² near 1 means the bond direction barely fluctuates (a rigid
// amino acid); lower values mean more motion — exactly the quantity
// compared between Anton, Desmond and NMR in Figure 6.
func OrderParameter(series BondVectorSeries) (float64, error) {
	if len(series) == 0 {
		return 0, fmt.Errorf("analysis: empty bond vector series")
	}
	var xx, yy, zz, xy, xz, yz float64
	for _, v := range series {
		u := v.Unit()
		xx += u.X * u.X
		yy += u.Y * u.Y
		zz += u.Z * u.Z
		xy += u.X * u.Y
		xz += u.X * u.Z
		yz += u.Y * u.Z
	}
	n := float64(len(series))
	xx /= n
	yy /= n
	zz /= n
	xy /= n
	xz /= n
	yz /= n
	s2 := 1.5*(xx*xx+yy*yy+zz*zz+2*(xy*xy+xz*xz+yz*yz)) - 0.5
	return s2, nil
}

// OrderParametersFromTrajectory extracts S² for each (i, j) bond pair from
// a trajectory of full coordinate frames: each frame is superposed onto
// the first frame using the alignment selection, then the bond unit
// vectors are accumulated.
func OrderParametersFromTrajectory(frames [][]vec.V3, alignSel []int, bonds [][2]int) ([]float64, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("analysis: empty trajectory")
	}
	series := make([]BondVectorSeries, len(bonds))
	// Weighted superposition of the full frame onto the first frame, with
	// only the alignment selection carrying weight: the transform is
	// determined by the selection and applied to every atom.
	w := make([]float64, len(frames[0]))
	for _, s := range alignSel {
		w[s] = 1
	}
	for _, frame := range frames {
		aligned, _, err := Superpose(frames[0], frame, w)
		if err != nil {
			return nil, err
		}
		for bi, b := range bonds {
			series[bi] = append(series[bi], aligned[b[1]].Sub(aligned[b[0]]))
		}
	}
	out := make([]float64, len(bonds))
	for i := range bonds {
		s2, err := OrderParameter(series[i])
		if err != nil {
			return nil, err
		}
		out[i] = s2
	}
	return out, nil
}

// NativeContacts identifies residue-pair contacts in a reference
// structure: pairs of positions closer than cutoff with sequence
// separation >= minSep.
func NativeContacts(ref []vec.V3, cutoff float64, minSep int) [][2]int {
	var out [][2]int
	for i := 0; i < len(ref); i++ {
		for j := i + minSep; j < len(ref); j++ {
			if vec.Dist(ref[i], ref[j]) <= cutoff {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// ContactFraction returns Q: the fraction of native contacts currently
// formed (within tolerance*native distance) — the folding order
// parameter used to detect the unfolding and refolding events of
// Figure 7.
func ContactFraction(ref, current []vec.V3, contacts [][2]int, tolerance float64) float64 {
	if len(contacts) == 0 {
		return 0
	}
	formed := 0
	for _, c := range contacts {
		dRef := vec.Dist(ref[c[0]], ref[c[1]])
		if vec.Dist(current[c[0]], current[c[1]]) <= dRef*tolerance {
			formed++
		}
	}
	return float64(formed) / float64(len(contacts))
}

// TransitionCount counts crossings of a Q(t) series between a folded
// threshold (above) and an unfolded threshold (below), with hysteresis:
// a transition is recorded each time the series moves from one basin to
// the other.
func TransitionCount(q []float64, foldedAbove, unfoldedBelow float64) int {
	const (
		unknown = iota
		folded
		unfolded
	)
	state := unknown
	transitions := 0
	for _, v := range q {
		switch {
		case v >= foldedAbove:
			if state == unfolded {
				transitions++
			}
			state = folded
		case v <= unfoldedBelow:
			if state == folded {
				transitions++
			}
			state = unfolded
		}
	}
	return transitions
}
