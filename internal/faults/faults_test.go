package faults

import (
	"reflect"
	"testing"
	"time"
)

// TestParseSpecRoundTrip: the canonical rendering of a parsed spec parses
// back to the same spec.
func TestParseSpecRoundTrip(t *testing.T) {
	in := "seed=7,drop=0.02,dup=0.01,delay=0.02,corrupt=0.005,stall=0.01,crashes=2,horizon=120"
	sp, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.Drop != 0.02 || sp.Crashes != 2 || sp.CrashHorizon != 120 {
		t.Fatalf("parsed %+v", sp)
	}
	// Defaults fill the unset bounds.
	if sp.MaxDelay != 2*time.Millisecond || sp.SafeAttempt != 3 {
		t.Fatalf("defaults not applied: %+v", sp)
	}
	sp2, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if sp2 != sp {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", sp, sp2)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"drop", "drop=x", "unknown=1", "maxdelay=5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if sp, err := ParseSpec(""); err != nil || sp != DefaultSpec() {
		t.Errorf("empty spec: %+v, %v", sp, err)
	}
	// Probabilities clamp instead of erroring.
	sp, err := ParseSpec("drop=1.5")
	if err != nil || sp.Drop != 1 {
		t.Errorf("clamp: %+v, %v", sp, err)
	}
}

// TestScheduleDeterministic: the same seed always produces the same crash
// schedule, message verdicts and stall decisions — the replay guarantee.
func TestScheduleDeterministic(t *testing.T) {
	sp, err := ParseSpec("seed=42,drop=0.1,dup=0.05,delay=0.1,corrupt=0.02,stall=0.05,crashes=4,horizon=50")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(sp, 8), New(sp, 8)
	if !reflect.DeepEqual(a.Schedule(), b.Schedule()) {
		t.Fatalf("schedules differ:\n%v\nvs\n%v", a.Schedule(), b.Schedule())
	}
	if len(a.Schedule()) != 4 {
		t.Fatalf("scheduled %d crashes, want 4", len(a.Schedule()))
	}
	for _, ev := range a.Schedule() {
		if ev.Step < 1 || ev.Shard < 0 || ev.Shard >= 8 {
			t.Fatalf("event out of range: %+v", ev)
		}
	}
	for step := int64(0); step < 20; step++ {
		for xid := uint32(0); xid < 4; xid++ {
			for att := 1; att <= 4; att++ {
				va := a.Message(step, xid, 0, 1, 2, att)
				vb := b.Message(step, xid, 0, 1, 2, att)
				if va != vb {
					t.Fatalf("verdicts differ at step %d xid %d attempt %d", step, xid, att)
				}
			}
		}
		if a.StallNs(step, 3, 5) != b.StallNs(step, 3, 5) {
			t.Fatalf("stall decisions differ at step %d", step)
		}
	}
}

// TestSafeAttempt: attempts at or past SafeAttempt are never faulted — the
// retransmission loop's progress guarantee.
func TestSafeAttempt(t *testing.T) {
	sp := DefaultSpec()
	sp.Drop, sp.Dup, sp.Delay, sp.Corrupt = 1, 0, 0, 0 // drop everything faultable
	p := New(sp, 4)
	if v := p.Message(1, 1, 0, 0, 1, 1); v.Act != ActDrop {
		t.Fatalf("attempt 1 with drop=1 delivered: %+v", v)
	}
	for att := sp.SafeAttempt; att < sp.SafeAttempt+3; att++ {
		if v := p.Message(1, 1, 0, 0, 1, att); v.Act != ActDeliver {
			t.Fatalf("safe attempt %d faulted: %+v", att, v)
		}
	}
}

// TestCrashConsumedOnce: a scheduled crash fires exactly once — the
// restored replay of the same step must not refire it.
func TestCrashConsumedOnce(t *testing.T) {
	sp := DefaultSpec()
	sp.Crashes, sp.CrashHorizon = 3, 30
	p := New(sp, 8)
	evs := p.Schedule()
	fired := 0
	for _, ev := range evs {
		if !p.Crash(ev.Step, ev.Shard, ev.Point) {
			t.Fatalf("scheduled crash %+v did not fire", ev)
		}
		fired++
		if p.Crash(ev.Step, ev.Shard, ev.Point) {
			t.Fatalf("crash %+v fired twice", ev)
		}
		// Wrong point or shard: no fire.
		if p.Crash(ev.Step, ev.Shard, 1-ev.Point) {
			t.Fatalf("crash %+v fired at the wrong point", ev)
		}
	}
	c := p.Counts()
	if c.CrashesFired != int64(fired) || c.CrashesScheduled != 3 {
		t.Fatalf("counts %+v after firing %d", c, fired)
	}
}

// TestVerdictCounts: the per-kind tallies track the issued verdicts.
func TestVerdictCounts(t *testing.T) {
	sp := DefaultSpec()
	sp.Drop, sp.Corrupt, sp.Dup, sp.Delay = 0.25, 0.25, 0.25, 0.25
	p := New(sp, 4)
	var got Counts
	for i := 0; i < 4000; i++ {
		switch p.Message(int64(i), 1, 0, 0, 1, 1).Act {
		case ActDrop:
			got.Drops++
		case ActCorrupt:
			got.Corrupts++
		case ActDup:
			got.Dups++
		case ActDelay:
			got.Delays++
		default:
			t.Fatalf("delivered with total fault probability 1 (i=%d)", i)
		}
	}
	c := p.Counts()
	if c.Drops != got.Drops || c.Dups != got.Dups || c.Delays != got.Delays || c.Corrupts != got.Corrupts {
		t.Fatalf("tallies %+v disagree with observed %+v", c, got)
	}
	if c.Drops == 0 || c.Dups == 0 || c.Delays == 0 || c.Corrupts == 0 {
		t.Fatalf("some verdict class never drawn: %+v", c)
	}
}

// TestDelayBounds: delay and stall draws stay within [max/4, max].
func TestDelayBounds(t *testing.T) {
	sp := DefaultSpec()
	sp.Delay = 1
	sp.Stall = 1
	p := New(sp, 4)
	for i := 0; i < 500; i++ {
		if v := p.Message(int64(i), 1, 0, 0, 1, 1); v.Act == ActDelay {
			if v.DelayNs < int64(sp.MaxDelay)/4 || v.DelayNs > int64(sp.MaxDelay) {
				t.Fatalf("delay %d ns outside [%d, %d]", v.DelayNs, int64(sp.MaxDelay)/4, int64(sp.MaxDelay))
			}
		}
		if ns := p.StallNs(int64(i), 0, 1); ns < int64(sp.MaxStall)/4 || ns > int64(sp.MaxStall) {
			t.Fatalf("stall %d ns outside bounds", ns)
		}
	}
}

// TestNilPlane: a nil plane is a quiet plane (the plain transport path).
func TestNilPlane(t *testing.T) {
	var p *Plane
	if v := p.Message(1, 1, 0, 0, 1, 1); v.Act != ActDeliver {
		t.Fatal("nil plane faulted a message")
	}
	if p.StallNs(1, 0, 0) != 0 || p.Crash(1, 0, 0) {
		t.Fatal("nil plane stalled or crashed")
	}
	if p.Counts() != (Counts{}) {
		t.Fatal("nil plane has counts")
	}
}
