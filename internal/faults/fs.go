package faults

// The storage fault plane: the same deterministic, seeded fault model as
// the message plane, applied to the write/fsync/rename/read path that
// every durable artifact in the repo goes through — checkpoint files,
// the service store's status records, and the run ledger. An FS wraps
// those operations and injects ENOSPC, EIO, torn writes, silently
// dropped fsyncs, slow-disk stalls, and whole-process crashes cut at a
// chosen point inside the atomic-write sequence.
//
// Verdicts are pure hashes of (seed, op, file base name, per-file
// attempt ordinal): no mutable PRNG, so each file's fault sequence is
// identical across runs no matter how goroutines interleave — the same
// replayability contract as the message plane. Liveness is bounded the
// same way too: at most SafeAttempt consecutive operations on the same
// (op, file) can be faulted, so any retry loop that survives
// SafeAttempt+1 attempts always converges.
//
// Crashes model process death, not media failure: when one fires, the
// sequence stops at the scheduled cut (leaving whatever a real crash
// would leave — a stray temp file, an unrenamed write, a renamed but
// un-fsynced directory entry), every dirty file whose fsync was dropped
// is truncated to its last durable length (the page cache is gone), and
// every subsequent operation fails with ErrCrash until Reboot — the
// simulated machine coming back up.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// FSOp names one storage operation class.
type FSOp uint8

const (
	OpWrite  FSOp = iota // data write (whole-file or append)
	OpSync               // fsync
	OpRename             // rename into place
	OpRead               // whole-file read
)

func (op FSOp) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpSync:
		return "fsync"
	case OpRename:
		return "rename"
	case OpRead:
		return "read"
	}
	return "op?"
}

// Crash points inside the atomic-write sequence (temp, write, fsync,
// rename). The scheduled campaign rotates through all of them, so a
// spec with Crashes >= FSCrashPoints cuts the persist path at every
// point at least once.
const (
	CrashBeforeWrite uint8 = iota // nothing written; the old image survives intact
	CrashMidWrite                 // a torn temp file exists; the destination is untouched
	CrashAfterWrite               // temp complete but unsynced and unrenamed
	CrashAfterSync                // temp durable but the rename never happened
	CrashAfterRename              // new image in place; the directory entry may not be durable

	// FSCrashPoints is the number of distinct crash points.
	FSCrashPoints = 5
)

// Injected-fault sentinels. Every transient injected error wraps both
// ErrInjected and the matching errno, so callers can retry on
// IsInjected/errors.Is(err, syscall.ENOSPC) exactly as they would for
// the real thing. ErrCrash is not transient: the process is presumed
// dead, and only Reboot clears it.
var (
	ErrInjected = errors.New("faults: injected storage fault")
	ErrCrash    = errors.New("faults: injected crash at persist point")
)

// IsCrash reports whether err is (or wraps) an injected crash.
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }

// IsInjected reports whether err is (or wraps) an injected transient
// storage fault (ENOSPC, EIO, torn write — not a crash).
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// FSSpec is a storage fault campaign: per-operation fault
// probabilities, the stall odds, and the crash schedule parameters.
type FSSpec struct {
	Seed int64 // hash seed; same seed = same campaign

	ENOSPC    float64 // per-write out-of-space probability (partial write, then failure)
	EIO       float64 // per-op I/O-error probability (sync, rename, read)
	Torn      float64 // per-write torn-write probability (partial write, detected failure)
	FsyncDrop float64 // per-fsync silent-drop probability (reports success, durability lost)
	Stall     float64 // per-file-op slow-disk stall probability

	MaxStall time.Duration // stall upper bound (draws land in [1/4, 1] of it)

	Crashes      int // crash events scheduled over the horizon
	CrashHorizon int // persist operations (writes + fsyncs) within which crashes land

	// SafeAttempt bounds consecutive faults per (op, file): the
	// SafeAttempt'th consecutive verdict on the same key is never
	// faulted, so bounded retry loops always converge.
	SafeAttempt int
}

// DefaultFSSpec returns a quiet spec (no faults) with sane bounds: 2 ms
// max stall, a 50-persist-op crash horizon, and 3 consecutive faults
// per (op, file) at most.
func DefaultFSSpec() FSSpec {
	return FSSpec{
		Seed:         1,
		MaxStall:     2 * time.Millisecond,
		CrashHorizon: 50,
		SafeAttempt:  3,
	}
}

// normalized fills zero bounds with defaults and clamps probabilities.
func (sp FSSpec) normalized() FSSpec {
	def := DefaultFSSpec()
	if sp.MaxStall <= 0 {
		sp.MaxStall = def.MaxStall
	}
	if sp.CrashHorizon <= 0 {
		sp.CrashHorizon = def.CrashHorizon
	}
	if sp.SafeAttempt <= 0 {
		sp.SafeAttempt = def.SafeAttempt
	}
	clamp := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp(&sp.ENOSPC)
	clamp(&sp.EIO)
	clamp(&sp.Torn)
	clamp(&sp.FsyncDrop)
	clamp(&sp.Stall)
	return sp
}

// ParseFSSpec parses a comma-separated key=value campaign description —
// the storage twin of ParseSpec, e.g.
//
//	"seed=11,enospc=0.05,torn=0.05,stall=0.02,maxstall=2ms,crashes=6,horizon=40"
//
// Keys: seed, enospc, eio, torn, fsyncdrop, stall (probabilities),
// crashes, horizon, safe (ints), maxstall (Go duration). Unset keys
// keep the DefaultFSSpec values.
func ParseFSSpec(s string) (FSSpec, error) {
	sp := DefaultFSSpec()
	if strings.TrimSpace(s) == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return sp, fmt.Errorf("faults: bad fs spec field %q (want key=value)", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			sp.Seed, err = strconv.ParseInt(v, 10, 64)
		case "enospc":
			sp.ENOSPC, err = strconv.ParseFloat(v, 64)
		case "eio":
			sp.EIO, err = strconv.ParseFloat(v, 64)
		case "torn":
			sp.Torn, err = strconv.ParseFloat(v, 64)
		case "fsyncdrop":
			sp.FsyncDrop, err = strconv.ParseFloat(v, 64)
		case "stall":
			sp.Stall, err = strconv.ParseFloat(v, 64)
		case "crashes":
			sp.Crashes, err = strconv.Atoi(v)
		case "horizon":
			sp.CrashHorizon, err = strconv.Atoi(v)
		case "safe":
			sp.SafeAttempt, err = strconv.Atoi(v)
		case "maxstall":
			sp.MaxStall, err = time.ParseDuration(v)
		default:
			return sp, fmt.Errorf("faults: unknown fs spec key %q", k)
		}
		if err != nil {
			return sp, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	return sp.normalized(), nil
}

// String renders the spec in ParseFSSpec's format (non-default fields).
func (sp FSSpec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatInt(sp.Seed, 10))
	f := func(k string, p float64) {
		if p > 0 {
			add(k, strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	f("enospc", sp.ENOSPC)
	f("eio", sp.EIO)
	f("torn", sp.Torn)
	f("fsyncdrop", sp.FsyncDrop)
	f("stall", sp.Stall)
	if sp.Crashes > 0 {
		add("crashes", strconv.Itoa(sp.Crashes))
		add("horizon", strconv.Itoa(sp.CrashHorizon))
	}
	return strings.Join(parts, ",")
}

// FSCounts are the storage plane's injected-fault tallies.
type FSCounts struct {
	Enospc     int64 `json:"enospc"`
	Eio        int64 `json:"eio"`
	Torn       int64 `json:"torn"`
	FsyncDrops int64 `json:"fsync_drops"`
	Stalls     int64 `json:"stalls"`

	Writes int64 `json:"writes"` // whole-file atomic writes attempted
	Reads  int64 `json:"reads"`  // whole-file reads attempted

	CrashesScheduled int   `json:"crashes_scheduled"`
	CrashesFired     int64 `json:"crashes_fired"`
}

// fault verdict classes (internal).
type fsClass uint8

const (
	fsOK fsClass = iota
	fsENOSPC
	fsEIO
	fsTorn
	fsFsyncDrop
)

// fsKey identifies a per-file op stream. Streams are keyed by the full
// path (two jobs' status.json files fault independently), but the hash
// uses only the base name, so verdict sequences survive a test's
// ever-changing temp directories.
type fsKey struct {
	op   FSOp
	path string
}

type fsPathState struct {
	n      uint64 // ops drawn on this key (the per-file attempt ordinal)
	streak int    // consecutive faulted verdicts (capped at SafeAttempt)
}

type fsCrash struct {
	point uint8
	fired bool
}

type armedCrash struct {
	substr string
	point  uint8
	fired  bool
}

// FS evaluates an FSSpec over the storage path. All methods are safe on
// a nil receiver, performing the plain (fault-free) operation — callers
// route unconditionally and a nil plane costs one branch.
type FS struct {
	spec FSSpec

	mu      sync.Mutex
	states  map[fsKey]*fsPathState
	durable map[string]int64 // path -> last durably synced byte length
	dirty   map[string]bool  // paths holding data whose fsync was dropped
	sched   map[uint64]*fsCrash
	armed   []*armedCrash
	ops     uint64 // global persist-op ordinal (whole-file writes + fsyncs)

	crashed atomic.Bool

	enospc, eio, torn, fsyncDrops, stalls atomic.Int64
	writes, reads, crashes                atomic.Int64
}

// NewFS builds a storage fault plane. The crash schedule — Spec.Crashes
// events over Spec.CrashHorizon persist operations — is fixed here from
// the seed alone; crash points rotate round-robin so a campaign with
// Crashes >= FSCrashPoints cuts every point of the persist sequence.
func NewFS(spec FSSpec) *FS {
	spec = spec.normalized()
	fs := &FS{
		spec:    spec,
		states:  make(map[fsKey]*fsPathState),
		durable: make(map[string]int64),
		dirty:   make(map[string]bool),
		sched:   make(map[uint64]*fsCrash),
	}
	for i := 0; i < spec.Crashes; i++ {
		h := mix(uint64(spec.Seed), 0xfc4a_54f5, uint64(i))
		ord := 1 + h%uint64(spec.CrashHorizon)
		for {
			if _, dup := fs.sched[ord]; !dup {
				break
			}
			ord++
		}
		fs.sched[ord] = &fsCrash{point: uint8(i % FSCrashPoints)}
	}
	return fs
}

// Spec returns the normalized campaign spec. A nil plane is quiet.
func (fs *FS) Spec() FSSpec {
	if fs == nil {
		return FSSpec{}
	}
	return fs.spec
}

// RetryBudget returns the attempt count that guarantees convergence for
// a retry loop over one operation: SafeAttempt consecutive faults per
// (op, file) at most, so budget = SafeAttempt + 1. A nil plane needs 1.
func (fs *FS) RetryBudget() int {
	if fs == nil {
		return 1
	}
	return fs.spec.SafeAttempt + 1
}

// ArmCrash schedules a one-shot crash at the given point of the next
// whole-file write whose path contains substr — the persist-point crash
// matrix tests aim cuts at exact files with this.
func (fs *FS) ArmCrash(substr string, point uint8) {
	if fs == nil {
		return
	}
	fs.mu.Lock()
	fs.armed = append(fs.armed, &armedCrash{substr: substr, point: point % FSCrashPoints})
	fs.mu.Unlock()
}

// Crashed reports whether an injected crash has fired and the simulated
// machine is down (every operation fails until Reboot).
func (fs *FS) Crashed() bool { return fs != nil && fs.crashed.Load() }

// Reboot brings the simulated machine back up after a crash. Dirty
// page-cache truncations were applied when the crash fired, so the disk
// is exactly what a real reboot would find.
func (fs *FS) Reboot() {
	if fs != nil {
		fs.crashed.Store(false)
	}
}

// Counts snapshots the injected-fault tallies.
func (fs *FS) Counts() FSCounts {
	if fs == nil {
		return FSCounts{}
	}
	fs.mu.Lock()
	sched := len(fs.sched)
	fs.mu.Unlock()
	return FSCounts{
		Enospc:           fs.enospc.Load(),
		Eio:              fs.eio.Load(),
		Torn:             fs.torn.Load(),
		FsyncDrops:       fs.fsyncDrops.Load(),
		Stalls:           fs.stalls.Load(),
		Writes:           fs.writes.Load(),
		Reads:            fs.reads.Load(),
		CrashesScheduled: sched,
		CrashesFired:     fs.crashes.Load(),
	}
}

// verdict draws the fault class for one operation on path. Pure hash of
// (seed, op, base name, per-key ordinal); the streak cap enforces the
// SafeAttempt liveness bound.
func (fs *FS) verdict(op FSOp, path string) (fsClass, uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	key := fsKey{op, path}
	st := fs.states[key]
	if st == nil {
		st = &fsPathState{}
		fs.states[key] = st
	}
	st.n++
	h := mix(uint64(fs.spec.Seed), 0xf5fa_0175, uint64(op), baseHash(path), st.n)
	u := u01(h)
	var class fsClass
	sp := &fs.spec
	switch op {
	case OpWrite:
		switch {
		case u < sp.ENOSPC:
			class = fsENOSPC
		case u < sp.ENOSPC+sp.Torn:
			class = fsTorn
		}
	case OpSync:
		switch {
		case u < sp.EIO:
			class = fsEIO
		case u < sp.EIO+sp.FsyncDrop:
			class = fsFsyncDrop
		}
	case OpRename, OpRead:
		if u < sp.EIO {
			class = fsEIO
		}
	}
	if class != fsOK {
		if st.streak >= sp.SafeAttempt {
			// Liveness bound: the SafeAttempt'th consecutive fault on this
			// key is suppressed, so retry loops always converge.
			st.streak = 0
			return fsOK, h
		}
		st.streak++
	} else {
		st.streak = 0
	}
	return class, h
}

// maybeStall draws the slow-disk stall for one file operation and
// sleeps it out (outside the mutex).
func (fs *FS) maybeStall(path string, ordinal uint64) {
	if fs.spec.Stall <= 0 {
		return
	}
	h := mix(uint64(fs.spec.Seed), 0xf557_a115, baseHash(path), ordinal)
	if u01(h) >= fs.spec.Stall {
		return
	}
	fs.stalls.Add(1)
	time.Sleep(time.Duration(spanNs(fs.spec.MaxStall, mix(h, 0xd0))))
}

// crashAt consumes the crash schedule for one persist operation:
// the global ordinal advances, and a scheduled or armed event returns
// its cut point. armedOnly ops (fsyncs) still advance the ordinal.
func (fs *FS) crashAt(path string, matchArmed bool) (uint8, uint64, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops++
	ord := fs.ops
	if ev, ok := fs.sched[ord]; ok && !ev.fired {
		ev.fired = true
		return ev.point, ord, true
	}
	if matchArmed {
		for _, a := range fs.armed {
			if !a.fired && strings.Contains(path, a.substr) {
				a.fired = true
				return a.point, ord, true
			}
		}
	}
	return 0, ord, false
}

// crash fires an injected crash: dropped-fsync files lose their
// unsynced tail (the page cache dies with the process), and the plane
// refuses every operation until Reboot.
func (fs *FS) crash() error {
	fs.mu.Lock()
	for path := range fs.dirty {
		if n, ok := fs.durable[path]; ok {
			if st, err := os.Stat(path); err == nil && st.Size() > n {
				_ = os.Truncate(path, n)
			}
		}
		delete(fs.dirty, path)
	}
	fs.mu.Unlock()
	fs.crashes.Add(1)
	fs.crashed.Store(true)
	return ErrCrash
}

// markDurable records that path's first size bytes are on stable
// storage (a real fsync completed).
func (fs *FS) markDurable(path string, size int64) {
	fs.mu.Lock()
	fs.durable[path] = size
	delete(fs.dirty, path)
	fs.mu.Unlock()
}

// markDirty records that path holds unsynced data beyond durable bytes;
// a crash truncates it back.
func (fs *FS) markDirty(path string, durable int64, keepExisting bool) {
	fs.mu.Lock()
	if prev, ok := fs.durable[path]; !ok || !keepExisting {
		fs.durable[path] = durable
	} else {
		fs.durable[path] = prev
	}
	fs.dirty[path] = true
	fs.mu.Unlock()
}

func injectedErr(class fsClass, op FSOp, path string) error {
	base := filepath.Base(path)
	switch class {
	case fsENOSPC:
		return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, base, syscall.ENOSPC)
	case fsEIO:
		return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, base, syscall.EIO)
	case fsTorn:
		return fmt.Errorf("%w: torn %s %s: %w", ErrInjected, op, base, syscall.EIO)
	}
	return nil
}

// WriteFile writes data to path with the full temp+fsync+rename+
// dir-fsync discipline (core.AtomicWriteFile's contract), injecting the
// campaign's faults at each stage. A nil plane performs the plain
// atomic write — this is the single implementation of the discipline.
func (fs *FS) WriteFile(path string, data []byte) error {
	if fs == nil {
		return plainAtomicWrite(path, data)
	}
	if fs.crashed.Load() {
		return ErrCrash
	}
	fs.writes.Add(1)
	point, ord, crashing := fs.crashAt(path, true)
	fs.maybeStall(path, ord)
	if crashing && point == CrashBeforeWrite {
		return fs.crash()
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	discard := func() {
		tmp.Close()
		os.Remove(tmpName)
	}

	class, h := fs.verdict(OpWrite, path)
	switch class {
	case fsENOSPC, fsTorn:
		// Partial write, then failure — what a full disk or an interrupted
		// write(2) leaves in the temp file. The temp is removed (the
		// caller's atomic-write contract never exposes it), the
		// destination is untouched.
		if len(data) > 0 {
			_, _ = tmp.Write(data[:h%uint64(len(data))])
		}
		discard()
		if class == fsENOSPC {
			fs.enospc.Add(1)
		} else {
			fs.torn.Add(1)
		}
		return injectedErr(class, OpWrite, path)
	}
	if crashing && point == CrashMidWrite {
		// The process dies mid-write(2): a torn temp file survives on
		// disk (inert — restores read the destination only), the
		// destination is untouched.
		if len(data) > 0 {
			_, _ = tmp.Write(data[:h%uint64(len(data))])
		}
		tmp.Close()
		return fs.crash()
	}
	if _, err := tmp.Write(data); err != nil {
		discard()
		return err
	}
	if crashing && point == CrashAfterWrite {
		tmp.Close()
		return fs.crash()
	}

	synced := false
	switch class, _ := fs.verdict(OpSync, path); class {
	case fsEIO:
		discard()
		fs.eio.Add(1)
		return injectedErr(fsEIO, OpSync, path)
	case fsFsyncDrop:
		// The disk lied: fsync reports success, the data sits in the page
		// cache. Only a later crash makes the difference observable.
		fs.fsyncDrops.Add(1)
	default:
		if err := tmp.Sync(); err != nil {
			discard()
			return err
		}
		synced = true
	}
	if crashing && point == CrashAfterSync {
		tmp.Close()
		return fs.crash()
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}

	if class, _ := fs.verdict(OpRename, path); class == fsEIO {
		os.Remove(tmpName)
		fs.eio.Add(1)
		return injectedErr(fsEIO, OpRename, path)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if synced {
		fs.markDurable(path, int64(len(data)))
	} else {
		// Renamed but never synced: on a crash the new image tears back
		// to a deterministic prefix (the pages that happened to reach the
		// platter before the cache died).
		fs.markDirty(path, int64(h%uint64(len(data)+1)), false)
	}
	if crashing && point == CrashAfterRename {
		return fs.crash()
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads path whole, injecting EIO read faults. A nil plane is
// os.ReadFile.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	if fs == nil {
		return os.ReadFile(path)
	}
	if fs.crashed.Load() {
		return nil, ErrCrash
	}
	fs.reads.Add(1)
	if class, _ := fs.verdict(OpRead, path); class == fsEIO {
		fs.eio.Add(1)
		return nil, injectedErr(fsEIO, OpRead, path)
	}
	return os.ReadFile(path)
}

// Append writes b at f's current offset (the ledger's append path),
// injecting write faults. A faulted append leaves a partial write in
// the file — exactly what a real short write does — and returns the
// error; the caller owns rollback (truncate to the pre-write offset)
// before retrying. A nil plane is f.Write.
func (fs *FS) Append(f *os.File, path string, b []byte) (int, error) {
	if fs == nil {
		return f.Write(b)
	}
	if fs.crashed.Load() {
		return 0, ErrCrash
	}
	class, h := fs.verdict(OpWrite, path)
	switch class {
	case fsENOSPC, fsTorn:
		n := 0
		if len(b) > 0 {
			n, _ = f.Write(b[:h%uint64(len(b))])
		}
		if class == fsENOSPC {
			fs.enospc.Add(1)
		} else {
			fs.torn.Add(1)
		}
		return n, injectedErr(class, OpWrite, path)
	}
	return f.Write(b)
}

// Sync fsyncs f, injecting EIO and silent-drop faults and consuming the
// scheduled crash stream (fsyncs are persist points too: a cut here
// lands between a ledger batch's data and its head rewrite). A nil
// plane is f.Sync.
func (fs *FS) Sync(f *os.File, path string) error {
	if fs == nil {
		return f.Sync()
	}
	if fs.crashed.Load() {
		return ErrCrash
	}
	point, _, crashing := fs.crashAt(path, false)
	if crashing && point < CrashAfterSync {
		// The cut lands before the fsync completes: unsynced data is
		// still dirty and dies with the page cache.
		fs.markDirtyIfUnknown(f, path)
		return fs.crash()
	}
	switch class, _ := fs.verdict(OpSync, path); class {
	case fsEIO:
		fs.eio.Add(1)
		return injectedErr(fsEIO, OpSync, path)
	case fsFsyncDrop:
		fs.fsyncDrops.Add(1)
		fs.markDirtyIfUnknown(f, path)
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if st, err := f.Stat(); err == nil {
		fs.markDurable(path, st.Size())
	}
	if crashing {
		return fs.crash()
	}
	return nil
}

// markDirtyIfUnknown marks f's path dirty, initializing the durable
// length to a deterministic prefix when the plane has never seen a real
// sync on it (the pre-session bytes were durable; we can't know where
// the boundary is, so the hash picks one reproducibly).
func (fs *FS) markDirtyIfUnknown(f *os.File, path string) {
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	fs.mu.Lock()
	if _, ok := fs.durable[path]; !ok {
		h := mix(uint64(fs.spec.Seed), 0xd1f7, baseHash(path), uint64(size))
		fs.durable[path] = int64(h % uint64(size+1))
	}
	fs.dirty[path] = true
	fs.mu.Unlock()
}

// baseHash hashes a path's base name (FNV-1a); verdict streams must not
// depend on the ever-changing temp directories test runs live in.
func baseHash(path string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range []byte(filepath.Base(path)) {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// plainAtomicWrite is the fault-free temp+fsync+rename+dir-fsync
// sequence — the single implementation behind core.AtomicWriteFile.
func plainAtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil // committed to rename; disarm the cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is advisory on some filesystems; a failure does
		// not undo an otherwise complete write.
		_ = d.Sync()
		d.Close()
	}
	return nil
}
