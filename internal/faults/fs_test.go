package faults

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestFSSpecParseRoundTrip(t *testing.T) {
	in := "seed=11,enospc=0.05,eio=0.03,torn=0.05,fsyncdrop=0.01,stall=0.02,maxstall=4ms,crashes=6,horizon=40,safe=4"
	sp, err := ParseFSSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 11 || sp.ENOSPC != 0.05 || sp.EIO != 0.03 || sp.Torn != 0.05 ||
		sp.FsyncDrop != 0.01 || sp.Stall != 0.02 || sp.MaxStall != 4*time.Millisecond ||
		sp.Crashes != 6 || sp.CrashHorizon != 40 || sp.SafeAttempt != 4 {
		t.Fatalf("parsed spec: %+v", sp)
	}
	// String renders enough to round-trip the fault schedule.
	back, err := ParseFSSpec(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != sp.Seed || back.ENOSPC != sp.ENOSPC || back.EIO != sp.EIO ||
		back.Torn != sp.Torn || back.FsyncDrop != sp.FsyncDrop ||
		back.Crashes != sp.Crashes || back.CrashHorizon != sp.CrashHorizon {
		t.Fatalf("round trip: %+v vs %+v", back, sp)
	}
	if _, err := ParseFSSpec("nonsense"); err == nil {
		t.Fatal("bare token accepted")
	}
	if _, err := ParseFSSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseFSSpec("enospc=lots"); err == nil {
		t.Fatal("bad float accepted")
	}
	// Empty spec is the quiet default.
	q, err := ParseFSSpec("")
	if err != nil || q.ENOSPC != 0 || q.Crashes != 0 {
		t.Fatalf("empty spec: %+v err=%v", q, err)
	}
}

// driveFS runs a fixed operation sequence against a fresh plane in its
// own directory and returns the per-op outcome fingerprint. Verdicts
// hash base names and per-file ordinals — never the directory — so two
// drives of the same campaign must fingerprint identically.
func driveFS(t *testing.T, spec FSSpec) string {
	t.Helper()
	dir := t.TempDir()
	fs := NewFS(spec)
	out := ""
	record := func(err error) {
		switch {
		case err == nil:
			out += "."
		case IsCrash(err):
			out += "C"
			fs.Reboot()
		case errors.Is(err, syscall.ENOSPC):
			out += "S"
		case errors.Is(err, syscall.EIO):
			out += "E"
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	payload := []byte("the quick brown fox jumps over the lazy dog")
	for i := 0; i < 40; i++ {
		record(fs.WriteFile(filepath.Join(dir, "status.json"), payload))
		record(fs.WriteFile(filepath.Join(dir, "job.ckpt"), payload))
		_, err := fs.ReadFile(filepath.Join(dir, "status.json"))
		if err != nil && !os.IsNotExist(err) {
			record(err)
		} else {
			record(nil)
		}
	}
	c := fs.Counts()
	return fmt.Sprintf("%s|%+v", out, c)
}

// TestFSReplayDeterminism: the same seed replays the same storage
// campaign — fault classes, crash cuts and tallies — regardless of
// which directory the files live in. Run under -count=2 by verify.sh so
// cross-run state leaks cannot hide.
func TestFSReplayDeterminism(t *testing.T) {
	spec, err := ParseFSSpec("seed=7,enospc=0.1,eio=0.08,torn=0.1,stall=0,crashes=3,horizon=30")
	if err != nil {
		t.Fatal(err)
	}
	a := driveFS(t, spec)
	b := driveFS(t, spec)
	if a != b {
		t.Fatalf("same seed, different campaigns:\n%s\n%s", a, b)
	}
	other := spec
	other.Seed = 8
	if c := driveFS(t, other); c == a {
		t.Fatalf("different seeds replayed the same campaign: %s", c)
	}
}

// TestFSLiveness: the SafeAttempt streak cap bounds consecutive faults
// per (op, file), so a retry loop with RetryBudget attempts always lands
// a write — even under a 100% fault probability.
func TestFSLiveness(t *testing.T) {
	spec := FSSpec{Seed: 3, ENOSPC: 1.0, SafeAttempt: 3}
	fs := NewFS(spec)
	path := filepath.Join(t.TempDir(), "status.json")
	for round := 0; round < 5; round++ {
		ok := false
		for attempt := 0; attempt < fs.RetryBudget(); attempt++ {
			if err := fs.WriteFile(path, []byte("payload")); err == nil {
				ok = true
				break
			} else if !IsInjected(err) {
				t.Fatalf("round %d: non-injected failure: %v", round, err)
			}
		}
		if !ok {
			t.Fatalf("round %d: %d attempts all faulted despite SafeAttempt=%d",
				round, fs.RetryBudget(), spec.SafeAttempt)
		}
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != "payload" {
		t.Fatalf("converged write not durable: %q, %v", b, err)
	}
}

// TestFSCrashPointMatrix: a crash cut at every point of the atomic
// write sequence leaves the destination either the complete old image
// or the complete new one — never torn — and the plane refuses all
// work until Reboot.
func TestFSCrashPointMatrix(t *testing.T) {
	oldImage, newImage := []byte("old image, complete"), []byte("new image, also complete")
	for point := uint8(0); point < FSCrashPoints; point++ {
		t.Run(fmt.Sprintf("point%d", point), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "job.ckpt")
			if err := os.WriteFile(path, oldImage, 0o644); err != nil {
				t.Fatal(err)
			}
			fs := NewFS(FSSpec{Seed: 5})
			fs.ArmCrash("job.ckpt", point)
			err := fs.WriteFile(path, newImage)
			if !IsCrash(err) {
				t.Fatalf("armed crash did not fire: %v", err)
			}
			if !fs.Crashed() {
				t.Fatal("plane not in crashed state")
			}
			// Down means down: every op fails until reboot.
			if err := fs.WriteFile(path, newImage); !IsCrash(err) {
				t.Fatalf("write on a crashed plane: %v", err)
			}
			if _, err := fs.ReadFile(path); !IsCrash(err) {
				t.Fatalf("read on a crashed plane: %v", err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want := oldImage
			if point >= CrashAfterRename {
				want = newImage
			}
			if string(got) != string(want) {
				t.Fatalf("point %d left %q, want %q", point, got, want)
			}
			fs.Reboot()
			if err := fs.WriteFile(path, newImage); err != nil {
				t.Fatalf("post-reboot write: %v", err)
			}
			if c := fs.Counts(); c.CrashesFired != 1 {
				t.Fatalf("crashes fired = %d, want 1", c.CrashesFired)
			}
		})
	}
}

// TestFSFsyncDropTornOnCrash: a dropped fsync is invisible until a
// crash, at which point the renamed-but-unsynced image tears back to a
// prefix — the failure mode the store's quarantine scan must absorb.
func TestFSFsyncDropTornOnCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "status.json")
	fs := NewFS(FSSpec{Seed: 9, FsyncDrop: 1.0, SafeAttempt: 1 << 20})
	payload := []byte("a record long enough that a torn prefix is visibly shorter than the whole")
	if err := fs.WriteFile(path, payload); err != nil {
		t.Fatalf("dropped fsync must report success: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != string(payload) {
		t.Fatalf("before the crash the full image is visible: %q", b)
	}
	fs.ArmCrash("other.file", CrashBeforeWrite)
	if err := fs.WriteFile(filepath.Join(dir, "other.file"), []byte("x")); !IsCrash(err) {
		t.Fatalf("armed crash did not fire: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= len(payload) {
		t.Fatalf("crash after dropped fsync kept all %d bytes durable", len(b))
	}
	if c := fs.Counts(); c.FsyncDrops < 1 {
		t.Fatalf("fsync drops = %d, want >= 1", c.FsyncDrops)
	}
}

// TestFSScheduledCrashCoverage: a campaign with Crashes >= FSCrashPoints
// schedules every cut point at least once, deterministically.
func TestFSScheduledCrashCoverage(t *testing.T) {
	fs := NewFS(FSSpec{Seed: 11, Crashes: FSCrashPoints + 2, CrashHorizon: 40})
	seen := make(map[uint8]int)
	for _, ev := range fs.sched {
		seen[ev.point]++
	}
	if len(fs.sched) != FSCrashPoints+2 {
		t.Fatalf("scheduled %d events, want %d", len(fs.sched), FSCrashPoints+2)
	}
	for p := uint8(0); p < FSCrashPoints; p++ {
		if seen[p] == 0 {
			t.Fatalf("crash point %d never scheduled: %v", p, seen)
		}
	}
}

// TestFSNilQuiet: a nil plane is the plain atomic-write path.
func TestFSNilQuiet(t *testing.T) {
	var fs *FS
	path := filepath.Join(t.TempDir(), "f")
	if err := fs.WriteFile(path, []byte("quiet")); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "quiet" {
		t.Fatalf("%q, %v", b, err)
	}
	if fs.Crashed() || fs.RetryBudget() != 1 {
		t.Fatal("nil plane must be quiet")
	}
	fs.Reboot()
	if c := fs.Counts(); c != (FSCounts{}) {
		t.Fatalf("nil counts: %+v", c)
	}
}
