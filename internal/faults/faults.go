// Package faults is the deterministic fault-injection plane for the
// sharded engine's message transport. Every decision — drop this message,
// duplicate it, delay it, flip a bit in its payload, crash this shard,
// stall it — is a pure function of the seed and the event's identity
// (step, exchange id, message kind, source, destination, attempt), hashed
// through a splitmix64 chain. There is no mutable PRNG state, so the
// schedule is identical no matter how goroutines interleave: the same
// seed replays the same failure campaign bitwise, which is what lets the
// chaos tests assert that a faulted trajectory equals the fault-free one.
//
// Shard crashes are pre-scheduled at construction (a deterministic set of
// (step, shard, point) events derived from the seed) rather than drawn
// per-message, so a campaign injects an exact, reproducible number of
// crash-recovery cycles. A crash event fires at most once: the supervisor
// re-executes the crashed step after restoring from a checkpoint, and a
// consumed event must not kill the shard again on replay.
//
// The plane guarantees eventual delivery: attempts at or beyond
// SafeAttempt are never faulted, so the transport's retransmission loop
// always terminates.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Action is the plane's verdict on one message attempt.
type Action uint8

// Message verdicts. ActDeliver is the zero value: a nil or quiet plane
// always delivers.
const (
	ActDeliver Action = iota
	ActDrop           // never delivered; the sender's ack timeout drives a retransmit
	ActDup            // delivered twice; receive-side dedup discards the copy
	ActDelay          // delivered late (possibly after a retransmit, i.e. reordered)
	ActCorrupt        // one payload bit flipped in a copy; the CRC check discards it
)

// Verdict is the plane's decision for one message attempt.
type Verdict struct {
	Act     Action
	DelayNs int64  // ActDelay: how long to hold the message
	Raw     uint64 // ActCorrupt: entropy the transport uses to pick the flipped bit
}

// Crash points within the position-exchange stage of a step.
const (
	CrashBeforeSend uint8 = iota // shard dies before multicasting its positions
	CrashAfterSend               // shard dies with its messages sent but unreceived
)

// Spec is a fault campaign: per-attempt message fault probabilities, the
// stall odds, and the crash schedule parameters.
type Spec struct {
	Seed    int64   // hash seed; same seed = same campaign
	Drop    float64 // per-attempt message drop probability
	Dup     float64 // duplication probability
	Delay   float64 // delay/reorder probability
	Corrupt float64 // payload bit-flip probability
	Stall   float64 // per-(step,stage,shard) slow-shard stall probability

	MaxDelay time.Duration // delay upper bound (draws land in [1/4, 1] of it)
	MaxStall time.Duration // stall upper bound (draws land in [1/4, 1] of it)

	Crashes      int // shard crash events scheduled over the horizon
	CrashHorizon int // steps within which crashes are scheduled

	// SafeAttempt is the first retransmission attempt the plane leaves
	// alone, bounding how often one message can be refused.
	SafeAttempt int
}

// DefaultSpec returns a quiet spec (no faults) with sane bounds: 2 ms max
// delay, 20 ms max stall, a 100-step crash horizon, and attempt 3 safe.
func DefaultSpec() Spec {
	return Spec{
		Seed:         1,
		MaxDelay:     2 * time.Millisecond,
		MaxStall:     20 * time.Millisecond,
		CrashHorizon: 100,
		SafeAttempt:  3,
	}
}

// normalized fills zero bounds with the defaults and clamps probabilities
// into [0, 1].
func (sp Spec) normalized() Spec {
	def := DefaultSpec()
	if sp.MaxDelay <= 0 {
		sp.MaxDelay = def.MaxDelay
	}
	if sp.MaxStall <= 0 {
		sp.MaxStall = def.MaxStall
	}
	if sp.CrashHorizon <= 0 {
		sp.CrashHorizon = def.CrashHorizon
	}
	if sp.SafeAttempt <= 0 {
		sp.SafeAttempt = def.SafeAttempt
	}
	clamp := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp(&sp.Drop)
	clamp(&sp.Dup)
	clamp(&sp.Delay)
	clamp(&sp.Corrupt)
	clamp(&sp.Stall)
	return sp
}

// ParseSpec parses a comma-separated key=value campaign description, e.g.
//
//	"seed=7,drop=0.02,dup=0.01,delay=0.02,corrupt=0.005,stall=0.01,crashes=2,horizon=120"
//
// Keys: seed, drop, dup, delay, corrupt, stall (probabilities), crashes,
// horizon, safe (ints), maxdelay, maxstall (Go durations). Unset keys
// keep the DefaultSpec values.
func ParseSpec(s string) (Spec, error) {
	sp := DefaultSpec()
	if strings.TrimSpace(s) == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return sp, fmt.Errorf("faults: bad spec field %q (want key=value)", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			sp.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			sp.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			sp.Dup, err = strconv.ParseFloat(v, 64)
		case "delay":
			sp.Delay, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			sp.Corrupt, err = strconv.ParseFloat(v, 64)
		case "stall":
			sp.Stall, err = strconv.ParseFloat(v, 64)
		case "crashes":
			sp.Crashes, err = strconv.Atoi(v)
		case "horizon":
			sp.CrashHorizon, err = strconv.Atoi(v)
		case "safe":
			sp.SafeAttempt, err = strconv.Atoi(v)
		case "maxdelay":
			sp.MaxDelay, err = time.ParseDuration(v)
		case "maxstall":
			sp.MaxStall, err = time.ParseDuration(v)
		default:
			return sp, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return sp, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	return sp.normalized(), nil
}

// String renders the spec in ParseSpec's format (only non-default fields).
func (sp Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatInt(sp.Seed, 10))
	f := func(k string, p float64) {
		if p > 0 {
			add(k, strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	f("drop", sp.Drop)
	f("dup", sp.Dup)
	f("delay", sp.Delay)
	f("corrupt", sp.Corrupt)
	f("stall", sp.Stall)
	if sp.Crashes > 0 {
		add("crashes", strconv.Itoa(sp.Crashes))
		add("horizon", strconv.Itoa(sp.CrashHorizon))
	}
	return strings.Join(parts, ",")
}

// Counts are the plane's injected-fault tallies. Drops, dups, delays and
// corruptions count per faulted attempt; attempts beyond the first exist
// only when earlier ones were refused, so the totals depend on the
// schedule alone, not on goroutine timing, except where retransmission
// races add extra (always-delivered) attempts.
type Counts struct {
	Drops    int64 `json:"drops"`
	Dups     int64 `json:"dups"`
	Delays   int64 `json:"delays"`
	Corrupts int64 `json:"corrupts"`
	Stalls   int64 `json:"stalls"`

	CrashesScheduled int   `json:"crashes_scheduled"`
	CrashesFired     int64 `json:"crashes_fired"`
}

// CrashEvent is one scheduled shard crash.
type CrashEvent struct {
	Step  int64
	Shard int32
	Point uint8
}

type crashKey struct {
	step  int64
	shard int32
}

type crashEvent struct {
	point uint8
	fired atomic.Bool
}

// Plane evaluates a Spec. Safe for concurrent use: verdicts are pure
// hashes and the tallies are atomics.
type Plane struct {
	spec   Spec
	shards int
	sched  map[crashKey]*crashEvent

	drops, dups, delays, corrupts, stalls, crashes atomic.Int64
}

// New builds a plane for a machine of the given shard count. The crash
// schedule — Spec.Crashes events over Spec.CrashHorizon steps — is fixed
// here, derived from the seed alone.
func New(spec Spec, shards int) *Plane {
	spec = spec.normalized()
	if shards < 1 {
		shards = 1
	}
	p := &Plane{spec: spec, shards: shards, sched: make(map[crashKey]*crashEvent)}
	for i := 0; i < spec.Crashes; i++ {
		h := mix(uint64(spec.Seed), 0xc4a5_4c4a, uint64(i))
		step := 1 + int64(mix(h, 1)%uint64(spec.CrashHorizon))
		shard := int32(mix(h, 2) % uint64(shards))
		point := uint8(mix(h, 3) % 2)
		key := crashKey{step, shard}
		// Linear-probe the step on collisions so the campaign schedules
		// exactly Spec.Crashes distinct events (deterministically).
		for {
			if _, dup := p.sched[key]; !dup {
				break
			}
			key.step++
		}
		p.sched[key] = &crashEvent{point: point}
	}
	return p
}

// Spec returns the normalized campaign spec.
func (p *Plane) Spec() Spec { return p.spec }

// Schedule returns the crash schedule ordered by (step, shard) — for
// reports and replay-determinism assertions.
func (p *Plane) Schedule() []CrashEvent {
	out := make([]CrashEvent, 0, len(p.sched))
	for k, ev := range p.sched {
		out = append(out, CrashEvent{Step: k.step, Shard: k.shard, Point: ev.point})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// Message returns the verdict for one transport attempt. kind
// distinguishes the message classes sharing an exchange (positions,
// short/long forces, acks); attempt starts at 1 and attempts at or past
// SafeAttempt always deliver.
func (p *Plane) Message(step int64, xid uint32, kind uint8, src, dst int32, attempt int) Verdict {
	if p == nil || attempt >= p.spec.SafeAttempt {
		return Verdict{}
	}
	h := mix(uint64(p.spec.Seed), 0x6d65_7373, uint64(step), uint64(xid),
		uint64(kind), uint64(uint32(src)), uint64(uint32(dst)), uint64(attempt))
	u := u01(h)
	sp := &p.spec
	switch {
	case u < sp.Drop:
		p.drops.Add(1)
		return Verdict{Act: ActDrop}
	case u < sp.Drop+sp.Corrupt:
		p.corrupts.Add(1)
		return Verdict{Act: ActCorrupt, Raw: mix(h, 0xb17)}
	case u < sp.Drop+sp.Corrupt+sp.Dup:
		p.dups.Add(1)
		return Verdict{Act: ActDup}
	case u < sp.Drop+sp.Corrupt+sp.Dup+sp.Delay:
		p.delays.Add(1)
		return Verdict{Act: ActDelay, DelayNs: spanNs(p.spec.MaxDelay, mix(h, 0xde1a))}
	}
	return Verdict{}
}

// StallNs returns how long the shard should stall at the given stage of
// the given step (0 = no stall). Stalls are bounded well below any sane
// supervisor heartbeat, so they exercise retransmission pressure without
// tripping crash detection.
func (p *Plane) StallNs(step int64, stage uint8, shard int32) int64 {
	if p == nil || p.spec.Stall <= 0 {
		return 0
	}
	h := mix(uint64(p.spec.Seed), 0x57a1_1575, uint64(step), uint64(stage), uint64(uint32(shard)))
	if u01(h) >= p.spec.Stall {
		return 0
	}
	p.stalls.Add(1)
	return spanNs(p.spec.MaxStall, mix(h, 0xd0))
}

// Crash reports whether the shard should die at the given point of the
// given step. A scheduled event fires exactly once: the restored replay
// of the same step finds it consumed.
func (p *Plane) Crash(step int64, shard int32, point uint8) bool {
	if p == nil || len(p.sched) == 0 {
		return false
	}
	ev, ok := p.sched[crashKey{step, shard}]
	if !ok || ev.point != point {
		return false
	}
	if !ev.fired.CompareAndSwap(false, true) {
		return false
	}
	p.crashes.Add(1)
	return true
}

// Counts snapshots the injected-fault tallies.
func (p *Plane) Counts() Counts {
	if p == nil {
		return Counts{}
	}
	return Counts{
		Drops:            p.drops.Load(),
		Dups:             p.dups.Load(),
		Delays:           p.delays.Load(),
		Corrupts:         p.corrupts.Load(),
		Stalls:           p.stalls.Load(),
		CrashesScheduled: len(p.sched),
		CrashesFired:     p.crashes.Load(),
	}
}

// spanNs maps 64 bits of entropy into [max/4, max] nanoseconds.
func spanNs(max time.Duration, h uint64) int64 {
	lo := int64(max) / 4
	if lo < 1 {
		lo = 1
	}
	span := int64(max) - lo
	if span <= 0 {
		return lo
	}
	return lo + int64(h%uint64(span+1))
}

// mix chains splitmix64 finalizers over the key words — a fast, well-
// mixed pure hash (no shared state, so verdicts are interleaving-free).
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		z := h
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		h = z
	}
	return h
}

// u01 maps a hash to a uniform float64 in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / float64(1<<53) }
