package refmd

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"anton/internal/ewald"
	"anton/internal/ff"
	"anton/internal/system"
	"anton/internal/vec"
)

// LongRangeMethod selects the mesh electrostatics solver.
type LongRangeMethod int

const (
	// UseSPME is the commodity default (B-spline particle mesh Ewald).
	UseSPME LongRangeMethod = iota
	// UseGSE uses Gaussian Split Ewald (for cross-checks with Anton).
	UseGSE
	// UseExact uses the O(N*K^3) structure-factor sum (small systems,
	// "extremely conservative parameters" reference of §5.2).
	UseExact
)

// Task identifies a profile bucket, matching the rows of Table 2.
type Task int

const (
	TaskRangeLimited Task = iota
	TaskFFT               // mesh convolution including both FFTs
	TaskMeshInterp        // charge spreading + force interpolation
	TaskCorrection        // excluded-pair and 1-4 corrections
	TaskBonded
	TaskIntegration
	TaskPairList
	numTasks
)

// TaskNames mirrors Table 2's row labels.
var TaskNames = map[Task]string{
	TaskRangeLimited: "Range-limited forces",
	TaskFFT:          "FFT & inverse FFT",
	TaskMeshInterp:   "Mesh interpolation",
	TaskCorrection:   "Correction forces",
	TaskBonded:       "Bonded forces",
	TaskIntegration:  "Integration",
	TaskPairList:     "Pair list",
}

// Config tunes the engine.
type Config struct {
	// Workers caps the pair-loop concurrency (0 = up to 16/GOMAXPROCS).
	Workers int

	Dt          float64 // time step, fs (paper: 2.5)
	Cutoff      float64 // range-limited cutoff, Å
	Mesh        int     // mesh points per axis
	Skin        float64 // pair list skin, Å
	MTSInterval int     // evaluate long-range every k steps (paper: 2)
	Method      LongRangeMethod
	EwaldTol    float64 // erfc(rc/(sqrt2 sigma)) target (default 1e-5)
	SPMEOrder   int     // B-spline order (default 6)
	KMax        int     // for UseExact

	// Thermostat: Berendsen coupling. TauT <= 0 disables (NVE).
	TargetT float64
	TauT    float64 // fs

	// Barostat: Berendsen pressure coupling (NPT). TauP <= 0 disables.
	// TargetP is in kcal/mol/Å^3 (1 atm ~ 1.458e-5). BarostatInterval
	// sets how many steps between (costly) pressure measurements.
	TargetP          float64
	TauP             float64 // fs
	BarostatInterval int     // default 10
}

// DefaultConfig returns the paper's standard parameters for a system.
func DefaultConfig(s *system.System) Config {
	return Config{
		Dt:          2.5,
		Cutoff:      s.Cutoff,
		Mesh:        s.Mesh,
		Skin:        1.5,
		MTSInterval: 2,
		Method:      UseSPME,
		EwaldTol:    1e-5,
		SPMEOrder:   6,
		TargetT:     300,
		TauT:        100,
	}
}

// Engine is the reference double-precision MD engine.
type Engine struct {
	Sys   *system.System
	Cfg   Config
	Split ewald.Split

	R, V, F []vec.V3
	step    int

	pl      *PairList
	workerF [][]vec.V3 // per-worker force buffers for the pair loop
	spme    *ewald.SPME
	gse     *ewald.GSE
	skipSet map[uint64]bool // exclusions plus 1-4s, for the pair list
	pair14  []ff.Pair14

	// Profile accumulates wall time per task (Table 2's shape).
	Profile [numTasks]time.Duration

	// Energies of the last force evaluation.
	PotentialEnergy float64
	longRangeEnergy float64 // retained between MTS evaluations
}

// NewEngine prepares an engine over a built system with the given config.
func NewEngine(s *system.System, cfg Config) (*Engine, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("refmd: non-positive time step")
	}
	if cfg.MTSInterval < 1 {
		cfg.MTSInterval = 1
	}
	if cfg.EwaldTol == 0 {
		cfg.EwaldTol = 1e-5
	}
	if cfg.SPMEOrder == 0 {
		cfg.SPMEOrder = 6
	}
	split := ewald.Split{
		Sigma:  ewald.SigmaForCutoff(cfg.Cutoff, cfg.EwaldTol),
		Cutoff: cfg.Cutoff,
	}
	// The engine owns a shallow copy of the system so the barostat can
	// rescale the box without mutating the caller's value.
	sysCopy := *s
	s = &sysCopy
	e := &Engine{
		Sys:   s,
		Cfg:   cfg,
		Split: split,
		R:     append([]vec.V3(nil), s.R...),
		V:     make([]vec.V3, s.NAtoms()),
		F:     make([]vec.V3, s.NAtoms()),
		pl:    NewPairList(cfg.Cutoff, cfg.Skin),
	}
	switch cfg.Method {
	case UseSPME:
		sp, err := ewald.NewSPME(split, s.Box, cfg.Mesh, cfg.Mesh, cfg.Mesh, cfg.SPMEOrder)
		if err != nil {
			return nil, err
		}
		e.spme = sp
	case UseGSE:
		g, err := ewald.NewGSE(split, s.Box, cfg.Mesh, cfg.Mesh, cfg.Mesh, s.RSpread)
		if err != nil {
			return nil, err
		}
		e.gse = g
	case UseExact:
		if cfg.KMax == 0 {
			cfg.KMax = 12
			e.Cfg.KMax = 12
		}
	}
	// Pair-list skip set: exclusions and 1-4 pairs.
	e.skipSet = make(map[uint64]bool, s.Top.NumExclusions()+len(s.Top.Pairs14))
	s.Top.ExcludedPairs(func(i, j int) { e.skipSet[pairKey(i, j)] = true })
	for _, p := range s.Top.Pairs14 {
		e.skipSet[pairKey(p.I, p.J)] = true
	}
	e.pair14 = s.Top.Pairs14
	ff.PlaceVSites(s.Top, s.Box, e.R)
	return e, nil
}

// workers returns the configured pair-loop concurrency.
func (e *Engine) workers() int {
	if e.Cfg.Workers > 0 {
		return e.Cfg.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

func pairKey(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(i)<<32 | uint64(uint32(j))
}

// SetVelocities installs initial velocities.
func (e *Engine) SetVelocities(v []vec.V3) { copy(e.V, v) }

// Step advances the simulation by n velocity-Verlet steps.
func (e *Engine) Step(n int) {
	if e.step == 0 {
		e.ComputeForces()
	}
	for it := 0; it < n; it++ {
		e.stepOnce()
	}
}

// stepOnce is one velocity-Verlet step with SHAKE/RATTLE and vsites.
func (e *Engine) stepOnce() {
	top := e.Sys.Top
	dt := e.Cfg.Dt
	t0 := time.Now()

	// Half kick + drift.
	old := append([]vec.V3(nil), e.R...)
	for i, a := range top.Atoms {
		if a.Mass == 0 {
			continue
		}
		acc := e.F[i].Scale(ff.ForceToAccel / a.Mass)
		e.V[i] = e.V[i].Add(acc.Scale(dt / 2))
		e.R[i] = e.R[i].Add(e.V[i].Scale(dt))
	}
	// SHAKE position constraints (also fixes velocities implicitly).
	e.shake(old, dt)
	ff.PlaceVSites(top, e.Sys.Box, e.R)
	e.Profile[TaskIntegration] += time.Since(t0)

	e.step++
	e.ComputeForces()

	t0 = time.Now()
	// Second half kick.
	for i, a := range top.Atoms {
		if a.Mass == 0 {
			continue
		}
		acc := e.F[i].Scale(ff.ForceToAccel / a.Mass)
		e.V[i] = e.V[i].Add(acc.Scale(dt / 2))
	}
	// RATTLE velocity constraints.
	e.rattle()
	// Berendsen thermostat.
	if e.Cfg.TauT > 0 {
		e.berendsen()
	}
	e.Profile[TaskIntegration] += time.Since(t0)

	// Berendsen barostat (NPT).
	if e.Cfg.TauP > 0 {
		interval := e.Cfg.BarostatInterval
		if interval < 1 {
			interval = 10
		}
		if e.step%interval == 0 {
			if err := e.applyBarostat(float64(interval)); err != nil {
				// Pressure measurement failures (solver rebuild) are
				// programming errors; surface loudly.
				panic(err)
			}
		}
	}
}

// applyBarostat measures the pressure and rescales the box and molecular
// positions toward the target (Berendsen weak coupling): the box scales
// by mu = (1 - (dt*interval/TauP)*(P0 - P))^(1/3), with molecules moved
// by their constraint-group centroids so rigid geometry is preserved.
func (e *Engine) applyBarostat(interval float64) error {
	p, err := e.Pressure()
	if err != nil {
		return err
	}
	mu3 := 1 - e.Cfg.Dt*interval/e.Cfg.TauP*(e.Cfg.TargetP-p)
	// Clamp per application: weak coupling must stay weak.
	if mu3 < 0.97 {
		mu3 = 0.97
	} else if mu3 > 1.03 {
		mu3 = 1.03
	}
	mu := math.Cbrt(mu3)

	top := e.Sys.Top
	// Molecular (group-centroid) scaling preserves constraint lengths.
	scaled := make([]bool, len(e.R))
	for _, g := range top.ConstraintGroups() {
		var c vec.V3
		var mTot float64
		for _, a := range g {
			m := top.Atoms[a].Mass
			c = c.Add(e.R[a].Scale(m))
			mTot += m
		}
		if mTot == 0 {
			continue
		}
		c = c.Scale(1 / mTot)
		shift := c.Scale(mu - 1)
		for _, a := range g {
			e.R[a] = e.R[a].Add(shift)
			scaled[a] = true
		}
	}
	for i := range e.R {
		if !scaled[i] {
			e.R[i] = e.R[i].Scale(mu)
		}
	}

	// Rescale the box and rebuild the box-dependent machinery.
	e.Sys.Box = vec.Box{L: e.Sys.Box.L.Scale(mu)}
	switch {
	case e.spme != nil:
		sp, err := ewald.NewSPME(e.Split, e.Sys.Box, e.Cfg.Mesh, e.Cfg.Mesh, e.Cfg.Mesh, e.Cfg.SPMEOrder)
		if err != nil {
			return err
		}
		e.spme = sp
	case e.gse != nil:
		g, err := ewald.NewGSE(e.Split, e.Sys.Box, e.Cfg.Mesh, e.Cfg.Mesh, e.Cfg.Mesh, e.Sys.RSpread)
		if err != nil {
			return err
		}
		e.gse = g
	}
	e.pl = NewPairList(e.Cfg.Cutoff, e.Cfg.Skin) // force rebuild
	ff.PlaceVSites(top, e.Sys.Box, e.R)
	e.ComputeForces()
	return nil
}

// ComputeForces evaluates all force terms into F and updates
// PotentialEnergy. Long-range terms are evaluated every MTSInterval
// steps and applied as an impulse (scaled by the interval).
func (e *Engine) ComputeForces() {
	top := e.Sys.Top
	box := e.Sys.Box
	n := top.NAtoms()
	for i := range e.F {
		e.F[i] = vec.Zero
	}
	energy := 0.0

	// Pair list maintenance.
	t0 := time.Now()
	if e.pl.NeedsRebuild(box, e.R) {
		e.pl.Build(box, e.R, func(i, j int) bool { return e.skipSet[pairKey(i, j)] })
	}
	e.Profile[TaskPairList] += time.Since(t0)

	// Range-limited: screened electrostatics + LJ over the pair list,
	// parallel across fixed contiguous chunks with per-worker force
	// buffers (deterministic for a given worker count).
	t0 = time.Now()
	rc2 := e.Cfg.Cutoff * e.Cfg.Cutoff
	pairs := e.pl.Pairs()
	workers := e.workers()
	if len(e.workerF) < workers || (len(e.workerF) > 0 && len(e.workerF[0]) != n) {
		e.workerF = make([][]vec.V3, workers)
		for w := range e.workerF {
			e.workerF[w] = make([]vec.V3, n)
		}
	}
	energies := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := e.workerF[w]
			for i := range buf {
				buf[i] = vec.Zero
			}
			var eLocal float64
			for _, p := range pairs[lo:hi] {
				i, j := int(p[0]), int(p[1])
				d := box.MinImage(e.R[i].Sub(e.R[j]))
				r2 := d.Norm2()
				if r2 > rc2 {
					continue
				}
				ai, aj := top.Atoms[i], top.Atoms[j]
				var fs float64
				if qq := ai.Charge * aj.Charge; qq != 0 {
					ee, f1 := e.Split.RealSpacePair(r2, ai.Charge, aj.Charge)
					// Potential-shifted energy: the truncated force
					// field's true potential is V(r) - V(rc).
					eLocal += ee - e.Split.RealSpaceShift(ai.Charge, aj.Charge)
					fs += f1
				}
				sigma, eps := e.Sys.Params.LJPair(ai.LJType, aj.LJType)
				if eps != 0 {
					el, f2 := ff.LJ126(r2, sigma, eps)
					elShift, _ := ff.LJ126(rc2, sigma, eps)
					eLocal += el - elShift
					fs += f2
				}
				fv := d.Scale(fs)
				buf[i] = buf[i].Add(fv)
				buf[j] = buf[j].Sub(fv)
			}
			energies[w] = eLocal
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if w*chunk >= len(pairs) {
			break
		}
		buf := e.workerF[w]
		for i := range e.F {
			e.F[i] = e.F[i].Add(buf[i])
		}
		energy += energies[w]
	}
	e.Profile[TaskRangeLimited] += time.Since(t0)

	// Long-range (mesh) + corrections, every MTSInterval steps, impulse-
	// weighted.
	if e.step%e.Cfg.MTSInterval == 0 {
		w := float64(e.Cfg.MTSInterval)
		lrF := make([]vec.V3, n)
		lrE := 0.0
		switch {
		case e.spme != nil:
			t0 = time.Now()
			lrE += e.spme.LongRange(top.Atoms, e.R, lrF)
			e.Profile[TaskFFT] += time.Since(t0)
		case e.gse != nil:
			t0 = time.Now()
			lrE += e.gse.LongRange(top.Atoms, e.R, lrF)
			e.Profile[TaskMeshInterp] += time.Since(t0)
		default:
			t0 = time.Now()
			lrE += ewald.ExactKSpace(e.Split, top.Atoms, box, e.R, lrF, e.Cfg.KMax)
			e.Profile[TaskFFT] += time.Since(t0)
		}
		lrE += e.Split.SelfEnergy(top.Atoms)

		// Correction forces: remove the mesh's contribution for excluded
		// pairs. (The scaled 1-4 terms are stiff short-range interactions
		// and run in the fast loop below — impulsing them on the long-
		// range cadence resonates with bonded-scale motions.)
		t0 = time.Now()
		lrE += e.Split.CorrectionForces(top, box, e.R, lrF)
		e.Profile[TaskCorrection] += time.Since(t0)

		e.longRangeEnergy = lrE
		for i := range lrF {
			e.F[i] = e.F[i].Add(lrF[i].Scale(w))
		}
	}
	energy += e.longRangeEnergy

	// Bonded terms and the scaled 1-4 interactions (fast loop).
	t0 = time.Now()
	energy += ff.BondedForces(top, box, e.R, e.F)
	energy += e.correct14(e.F)
	e.Profile[TaskBonded] += time.Since(t0)

	// Virtual-site force spreading.
	ff.SpreadVSiteForces(top, e.F)

	e.PotentialEnergy = energy
}

// correct14 removes the mesh's smooth-component for 1-4 pairs and adds
// the scaled bare Coulomb and LJ interactions; returns the energy change.
func (e *Engine) correct14(f []vec.V3) float64 {
	top := e.Sys.Top
	box := e.Sys.Box
	energy := 0.0
	for _, p := range e.pair14 {
		ai, aj := top.Atoms[p.I], top.Atoms[p.J]
		d := box.MinImage(e.R[p.I].Sub(e.R[p.J]))
		r2 := d.Norm2()
		var fs float64
		if qq := ai.Charge * aj.Charge; qq != 0 {
			// Remove the smooth part the mesh computed.
			es, f1 := e.Split.SmoothPair(r2, ai.Charge, aj.Charge)
			energy -= es
			fs -= f1
			// Add the scaled bare interaction.
			eb, f2 := ff.Coulomb(r2, ai.Charge, aj.Charge)
			energy += top.Scale14Elec * eb
			fs += top.Scale14Elec * f2
		}
		sigma, eps := e.Sys.Params.LJPair(ai.LJType, aj.LJType)
		if eps != 0 {
			el, f3 := ff.LJ126(r2, sigma, eps)
			energy += top.Scale14LJ * el
			fs += top.Scale14LJ * f3
		}
		fv := d.Scale(fs)
		f[p.I] = f[p.I].Add(fv)
		f[p.J] = f[p.J].Sub(fv)
	}
	return energy
}

// shake applies iterative SHAKE position constraints: after the
// unconstrained drift from `old`, bond lengths are restored and the
// velocities corrected to match the constrained displacement.
func (e *Engine) shake(old []vec.V3, dt float64) {
	top := e.Sys.Top
	box := e.Sys.Box
	const tol = 1e-10
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		maxViol := 0.0
		for _, c := range top.Constraints {
			d := box.MinImage(e.R[c.I].Sub(e.R[c.J]))
			diff := d.Norm2() - c.R*c.R
			if v := math.Abs(diff) / (c.R * c.R); v > maxViol {
				maxViol = v
			}
			if math.Abs(diff) < tol {
				continue
			}
			ref := box.MinImage(old[c.I].Sub(old[c.J]))
			mi := 1 / top.Atoms[c.I].Mass
			mj := 1 / top.Atoms[c.J].Mass
			g := diff / (2 * (mi + mj) * d.Dot(ref))
			corr := ref.Scale(g)
			e.R[c.I] = e.R[c.I].Sub(corr.Scale(mi))
			e.R[c.J] = e.R[c.J].Add(corr.Scale(mj))
		}
		if maxViol < tol {
			break
		}
	}
	// Velocity correction: constrained atoms get the velocity consistent
	// with their constrained displacement, v = (r_con - r_old)/dt, which
	// equals the half-kick velocity plus the constraint impulse.
	inDt := 1 / dt
	for _, g := range top.ConstraintGroups() {
		for _, i := range g {
			if top.Atoms[i].Mass == 0 {
				continue
			}
			e.V[i] = box.MinImage(e.R[i].Sub(old[i])).Scale(inDt)
		}
	}
}

// rattle removes velocity components along constrained bonds.
func (e *Engine) rattle() {
	top := e.Sys.Top
	box := e.Sys.Box
	const tol = 1e-12
	for iter := 0; iter < 100; iter++ {
		worst := 0.0
		for _, c := range top.Constraints {
			d := box.MinImage(e.R[c.I].Sub(e.R[c.J]))
			vRel := e.V[c.I].Sub(e.V[c.J])
			dot := d.Dot(vRel)
			if math.Abs(dot) < tol {
				continue
			}
			if math.Abs(dot) > worst {
				worst = math.Abs(dot)
			}
			mi := 1 / top.Atoms[c.I].Mass
			mj := 1 / top.Atoms[c.J].Mass
			k := dot / (d.Norm2() * (mi + mj))
			e.V[c.I] = e.V[c.I].Sub(d.Scale(k * mi))
			e.V[c.J] = e.V[c.J].Add(d.Scale(k * mj))
		}
		if worst < tol {
			break
		}
	}
}

// berendsen rescales velocities toward the target temperature.
func (e *Engine) berendsen() {
	T := e.Temperature()
	if T <= 0 {
		return
	}
	lam := math.Sqrt(1 + e.Cfg.Dt/e.Cfg.TauT*(e.Cfg.TargetT/T-1))
	for i := range e.V {
		e.V[i] = e.V[i].Scale(lam)
	}
}

// KineticEnergy returns the kinetic energy in kcal/mol.
func (e *Engine) KineticEnergy() float64 {
	ke := 0.0
	for i, a := range e.Sys.Top.Atoms {
		ke += 0.5 * ff.VelToKinetic * a.Mass * e.V[i].Norm2()
	}
	return ke
}

// Temperature returns the instantaneous kinetic temperature.
func (e *Engine) Temperature() float64 {
	dof := e.Sys.Top.DegreesOfFreedom()
	if dof <= 0 {
		return 0
	}
	return 2 * e.KineticEnergy() / (float64(dof) * ff.KB)
}

// TotalEnergy returns kinetic + potential of the last evaluation.
func (e *Engine) TotalEnergy() float64 { return e.KineticEnergy() + e.PotentialEnergy }

// StepCount returns the number of completed steps.
func (e *Engine) StepCount() int { return e.step }
