// Package refmd implements a complete reference MD engine of the kind the
// paper benchmarks against (GROMACS/Desmond-class, §3.1 Table 2 and §5.1):
// double-precision floating point, O(N) cell lists feeding a Verlet pair
// list with a skin, SPME (or exact Ewald) long-range electrostatics,
// velocity-Verlet integration with SHAKE/RATTLE constraints and rigid
// water, a Berendsen thermostat, and RESPA-style multiple time stepping.
// It provides the force-error reference (§5.2), the x86 execution-profile
// shape (Table 2's left columns), and the cross-engine check for the
// Anton engine in internal/core.
package refmd

import (
	"math"

	"anton/internal/vec"
)

// PairList is a Verlet neighbor list built from a cell decomposition. It
// stores half the pairs (i < j) within cutoff+skin, excluding topological
// exclusions and scaled 1-4 pairs (those are handled analytically).
type PairList struct {
	Cutoff float64
	Skin   float64

	pairs   [][2]int32
	refPos  []vec.V3 // positions at build time, for displacement tracking
	maxDisp float64
}

// NewPairList creates a pair list manager.
func NewPairList(cutoff, skin float64) *PairList {
	return &PairList{Cutoff: cutoff, Skin: skin}
}

// Pairs returns the current pair set.
func (pl *PairList) Pairs() [][2]int32 { return pl.pairs }

// NeedsRebuild reports whether any atom has moved more than half the skin
// since the last build (the standard safety criterion).
func (pl *PairList) NeedsRebuild(box vec.Box, r []vec.V3) bool {
	if pl.refPos == nil || len(pl.refPos) != len(r) {
		return true
	}
	lim := pl.Skin / 2
	lim2 := lim * lim
	for i := range r {
		if box.Dist2(r[i], pl.refPos[i]) > lim2 {
			return true
		}
	}
	return false
}

// Build reconstructs the pair list with an O(N) cell decomposition. skip
// reports pairs to omit (exclusions and 1-4s).
func (pl *PairList) Build(box vec.Box, r []vec.V3, skip func(i, j int) bool) {
	n := len(r)
	pl.pairs = pl.pairs[:0]
	pl.refPos = append(pl.refPos[:0], r...)

	reach := pl.Cutoff + pl.Skin
	// Cell grid: at least 3 cells per axis for the half-neighbor sweep to
	// be valid; otherwise fall back to the O(N^2) loop (tiny systems).
	nx := int(box.L.X / reach)
	ny := int(box.L.Y / reach)
	nz := int(box.L.Z / reach)
	if nx < 3 || ny < 3 || nz < 3 {
		pl.buildN2(box, r, skip)
		return
	}
	cx, cy, cz := box.L.X/float64(nx), box.L.Y/float64(ny), box.L.Z/float64(nz)
	cells := make([][]int32, nx*ny*nz)
	cellOf := func(p vec.V3) (int, int, int) {
		w := box.Wrap(p)
		i, j, k := int(w.X/cx), int(w.Y/cy), int(w.Z/cz)
		if i >= nx {
			i = nx - 1
		}
		if j >= ny {
			j = ny - 1
		}
		if k >= nz {
			k = nz - 1
		}
		return i, j, k
	}
	lin := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for a := 0; a < n; a++ {
		i, j, k := cellOf(r[a])
		cells[lin(i, j, k)] = append(cells[lin(i, j, k)], int32(a))
	}

	reach2 := reach * reach
	// Half-stencil over neighboring cells: each unordered cell pair
	// visited once; within a cell, i<j ordering.
	type off struct{ dx, dy, dz int }
	var stencil []off
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0) {
					stencil = append(stencil, off{dx, dy, dz})
				}
			}
		}
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				home := cells[lin(i, j, k)]
				// Intra-cell pairs.
				for a := 0; a < len(home); a++ {
					for b := a + 1; b < len(home); b++ {
						pl.consider(box, r, home[a], home[b], reach2, skip)
					}
				}
				// Cross-cell pairs over the half stencil.
				for _, o := range stencil {
					ni := (i + o.dx + nx) % nx
					nj := (j + o.dy + ny) % ny
					nk := (k + o.dz + nz) % nz
					other := cells[lin(ni, nj, nk)]
					for _, a := range home {
						for _, b := range other {
							pl.consider(box, r, a, b, reach2, skip)
						}
					}
				}
			}
		}
	}
}

func (pl *PairList) consider(box vec.Box, r []vec.V3, a, b int32, reach2 float64, skip func(i, j int) bool) {
	if box.Dist2(r[a], r[b]) > reach2 {
		return
	}
	i, j := a, b
	if i > j {
		i, j = j, i
	}
	if skip != nil && skip(int(i), int(j)) {
		return
	}
	pl.pairs = append(pl.pairs, [2]int32{i, j})
}

func (pl *PairList) buildN2(box vec.Box, r []vec.V3, skip func(i, j int) bool) {
	reach2 := (pl.Cutoff + pl.Skin) * (pl.Cutoff + pl.Skin)
	n := len(r)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if box.Dist2(r[i], r[j]) > reach2 {
				continue
			}
			if skip != nil && skip(i, j) {
				continue
			}
			pl.pairs = append(pl.pairs, [2]int32{int32(i), int32(j)})
		}
	}
}

// MeanPairsPerAtom returns the average half-list length per atom, a
// workload statistic for the performance models.
func (pl *PairList) MeanPairsPerAtom() float64 {
	if len(pl.refPos) == 0 {
		return 0
	}
	return float64(len(pl.pairs)) / float64(len(pl.refPos))
}

// ExpectedPairsPerAtom returns the analytic half-count of pairs within the
// cutoff for a uniform density rho: (2*pi/3)*rho*rc^3.
func ExpectedPairsPerAtom(rho, rc float64) float64 {
	return 2 * math.Pi / 3 * rho * rc * rc * rc
}
