package refmd

import (
	"math"
	"math/rand"
	"testing"

	"anton/internal/ff"
	"anton/internal/system"
	"anton/internal/vec"
)

func smallEngine(t *testing.T, protein bool, cfgEdit func(*Config)) *Engine {
	t.Helper()
	s, err := system.Small(protein, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s)
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	return e
}

func TestPairListMatchesBruteForce(t *testing.T) {
	s, err := system.Small(false, 5)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPairList(6.0, 1.0)
	pl.Build(s.Box, s.R, nil)
	// Brute force count of pairs within cutoff+skin.
	want := make(map[uint64]bool)
	reach2 := 7.0 * 7.0
	for i := 0; i < len(s.R); i++ {
		for j := i + 1; j < len(s.R); j++ {
			if s.Box.Dist2(s.R[i], s.R[j]) <= reach2 {
				want[pairKey(i, j)] = true
			}
		}
	}
	got := make(map[uint64]bool)
	for _, p := range pl.Pairs() {
		k := pairKey(int(p[0]), int(p[1]))
		if got[k] {
			t.Fatalf("pair %v duplicated", p)
		}
		got[k] = true
	}
	if len(got) != len(want) {
		t.Fatalf("pair count: got %d, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %x", k)
		}
	}
}

func TestPairListRebuildCriterion(t *testing.T) {
	s, _ := system.Small(false, 6)
	pl := NewPairList(6.0, 1.0)
	pl.Build(s.Box, s.R, nil)
	if pl.NeedsRebuild(s.Box, s.R) {
		t.Error("fresh list claims rebuild")
	}
	r2 := append([]vec.V3(nil), s.R...)
	r2[0] = r2[0].Add(vec.V3{X: 0.6}) // > skin/2
	if !pl.NeedsRebuild(s.Box, r2) {
		t.Error("movement beyond skin/2 not detected")
	}
	r3 := append([]vec.V3(nil), s.R...)
	r3[0] = r3[0].Add(vec.V3{X: 0.3}) // < skin/2
	if pl.NeedsRebuild(s.Box, r3) {
		t.Error("movement within skin/2 triggered rebuild")
	}
}

func TestForcesMatchNumericalGradient(t *testing.T) {
	// The engine's total force must be the negative gradient of its total
	// potential energy (with MTS disabled so everything is evaluated).
	e := smallEngine(t, true, func(c *Config) {
		c.MTSInterval = 1
		c.TauT = 0
	})
	e.ComputeForces()
	f := append([]vec.V3(nil), e.F...)
	const h = 1e-5
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		a := rng.Intn(e.Sys.NAtoms())
		if e.Sys.Top.Atoms[a].Mass == 0 {
			continue // vsite forces are spread to parents
		}
		c := rng.Intn(3)
		orig := e.R[a]
		e.R[a] = orig.SetComp(c, orig.Comp(c)+h)
		ff.PlaceVSites(e.Sys.Top, e.Sys.Box, e.R)
		e.ComputeForces()
		ep := e.PotentialEnergy
		e.R[a] = orig.SetComp(c, orig.Comp(c)-h)
		ff.PlaceVSites(e.Sys.Top, e.Sys.Box, e.R)
		e.ComputeForces()
		em := e.PotentialEnergy
		e.R[a] = orig
		ff.PlaceVSites(e.Sys.Top, e.Sys.Box, e.R)
		e.ComputeForces()
		want := -(ep - em) / (2 * h)
		got := f[a].Comp(c)
		// Tolerance is loose because the pair list cutoff truncation and
		// mesh interpolation are not smooth to machine precision.
		if math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Errorf("atom %d comp %d: force %g vs numerical %g", a, c, got, want)
		}
	}
}

func TestNVEEnergyConservation(t *testing.T) {
	// Without a thermostat, total energy should be conserved to a small
	// drift over hundreds of steps.
	e := smallEngine(t, false, func(c *Config) {
		c.TauT = 0 // NVE
		c.MTSInterval = 1
		c.Dt = 1.0
	})
	e.Step(1) // settle constraints
	e0 := e.TotalEnergy()
	e.Step(400)
	e1 := e.TotalEnergy()
	drift := math.Abs(e1 - e0)
	perDof := drift / float64(e.Sys.Top.DegreesOfFreedom())
	// kcal/mol per DoF over 0.4 ps; generous bound (kT ~ 0.6).
	if perDof > 0.05 {
		t.Errorf("NVE drift %g kcal/mol/DoF over 400 fs (total %g)", perDof, drift)
	}
}

func TestConstraintsHoldDuringDynamics(t *testing.T) {
	e := smallEngine(t, true, nil)
	e.Step(50)
	top := e.Sys.Top
	for _, c := range top.Constraints {
		d := e.Sys.Box.Dist(e.R[c.I], e.R[c.J])
		if math.Abs(d-c.R)/c.R > 1e-6 {
			t.Fatalf("constraint (%d,%d): length %g, want %g", c.I, c.J, d, c.R)
		}
	}
}

func TestThermostatRegulatesTemperature(t *testing.T) {
	e := smallEngine(t, false, func(c *Config) {
		c.TargetT = 350
		c.TauT = 50
	})
	e.Step(300)
	T := e.Temperature()
	if math.Abs(T-350) > 60 {
		t.Errorf("temperature %g, want ~350", T)
	}
}

func TestMomentumConserved(t *testing.T) {
	e := smallEngine(t, false, func(c *Config) {
		c.TauT = 0
		c.MTSInterval = 1
	})
	e.Step(100)
	var p vec.V3
	for i, a := range e.Sys.Top.Atoms {
		p = p.Add(e.V[i].Scale(a.Mass))
	}
	// Compare to thermal momentum scale.
	scale := math.Sqrt(float64(e.Sys.NAtoms())) * 18 * 0.02
	if p.Norm() > 0.05*scale {
		t.Errorf("net momentum %v grew", p)
	}
}

func TestMTSInterval(t *testing.T) {
	// MTS=2 should roughly halve the FFT task count versus MTS=1 over the
	// same number of steps, and stay stable.
	e1 := smallEngine(t, false, func(c *Config) { c.MTSInterval = 1; c.Dt = 1 })
	e2 := smallEngine(t, false, func(c *Config) { c.MTSInterval = 2; c.Dt = 1 })
	e1.Step(40)
	e2.Step(40)
	if e2.Profile[TaskFFT] >= e1.Profile[TaskFFT] {
		t.Errorf("MTS=2 FFT time %v not below MTS=1 %v", e2.Profile[TaskFFT], e1.Profile[TaskFFT])
	}
	if math.IsNaN(e2.TotalEnergy()) {
		t.Error("MTS=2 went unstable")
	}
}

func TestGSEAndSPMEEnginesAgree(t *testing.T) {
	eS := smallEngine(t, true, func(c *Config) { c.Method = UseSPME; c.MTSInterval = 1 })
	eG := smallEngine(t, true, func(c *Config) { c.Method = UseGSE; c.MTSInterval = 1 })
	eS.ComputeForces()
	eG.ComputeForces()
	var rms, diff float64
	for i := range eS.F {
		rms += eS.F[i].Norm2()
		diff += eS.F[i].Sub(eG.F[i]).Norm2()
	}
	if math.Sqrt(diff/rms) > 0.02 {
		t.Errorf("GSE and SPME engines disagree: rel force diff %g", math.Sqrt(diff/rms))
	}
	if math.Abs(eS.PotentialEnergy-eG.PotentialEnergy) > 0.01*math.Abs(eS.PotentialEnergy) {
		t.Errorf("energies differ: %g vs %g", eS.PotentialEnergy, eG.PotentialEnergy)
	}
}

func TestProfileShape(t *testing.T) {
	// On the commodity path with typical parameters, range-limited work
	// dominates the per-step profile (Table 2's first column: 64%).
	e := smallEngine(t, true, nil)
	e.Step(20)
	var total float64
	for task := Task(0); task < numTasks; task++ {
		total += e.Profile[task].Seconds()
	}
	rl := e.Profile[TaskRangeLimited].Seconds()
	if rl/total < 0.25 {
		t.Errorf("range-limited fraction %.2f implausibly small", rl/total)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	s, _ := system.Small(false, 1)
	if _, err := NewEngine(s, Config{Dt: 0}); err == nil {
		t.Error("zero dt accepted")
	}
	cfg := DefaultConfig(s)
	cfg.Mesh = 30 // not a power of two
	if _, err := NewEngine(s, cfg); err == nil {
		t.Error("non-pow2 mesh accepted")
	}
}

func TestExpectedPairsPerAtom(t *testing.T) {
	// Water at 0.1 atoms/Å^3 and 9 Å cutoff: ~153 pairs/atom (half list).
	got := ExpectedPairsPerAtom(0.1, 9)
	if math.Abs(got-152.7) > 1 {
		t.Errorf("expected pairs: got %g", got)
	}
	// The built list should be in that ballpark for a water box.
	s, _ := system.Small(false, 2)
	pl := NewPairList(7.0, 0)
	pl.Build(s.Box, s.R, nil)
	rho := float64(s.NAtoms()) / s.Box.Volume()
	want := ExpectedPairsPerAtom(rho, 7.0)
	if math.Abs(pl.MeanPairsPerAtom()-want) > 0.25*want {
		t.Errorf("pairs per atom %g, analytic %g", pl.MeanPairsPerAtom(), want)
	}
}

func TestPressureFinite(t *testing.T) {
	e := smallEngine(t, false, func(c *Config) { c.MTSInterval = 1 })
	e.Step(20)
	p, err := e.Pressure()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("pressure %v", p)
	}
	// Condensed water at ~liquid density: |P| below a few kbar
	// (1 kcal/mol/Å^3 ~ 69 katm; synthetic packing allows generous slack).
	if math.Abs(p) > 1.0 {
		t.Errorf("pressure %g kcal/mol/Å^3 out of plausible range", p)
	}
}

func TestPressureRespondsToDensity(t *testing.T) {
	// Compressing the same configuration must raise the measured pressure.
	s1, err := system.Argon(150, 24.0, 8.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := system.Argon(150, 20.0, 8.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s *system.System) float64 {
		cfg := DefaultConfig(s)
		cfg.MTSInterval = 1
		e, err := NewEngine(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		e.SetVelocities(system.InitVelocities(s.Top, 120, rng))
		e.Step(10)
		p, err := e.Pressure()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	loose := mk(s1)
	dense := mk(s2)
	if dense <= loose {
		t.Errorf("denser argon should have higher pressure: %g vs %g", dense, loose)
	}
}

func TestBarostatMovesVolumeTowardTarget(t *testing.T) {
	// An over-compressed argon box under NPT at low target pressure must
	// expand; volume responds in the correct direction.
	s, err := system.Argon(150, 19.0, 7.0, 3) // dense
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s)
	cfg.MTSInterval = 1
	cfg.TargetT = 120
	cfg.TauT = 50
	cfg.TargetP = 1.458e-5 // ~1 atm
	cfg.TauP = 200
	cfg.BarostatInterval = 5
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	e.SetVelocities(system.InitVelocities(s.Top, 120, rng))
	e.Step(5)
	p0, err := e.Pressure()
	if err != nil {
		t.Fatal(err)
	}
	v0 := e.Sys.Box.Volume()
	e.Step(100)
	v1 := e.Sys.Box.Volume()
	p1, err := e.Pressure()
	if err != nil {
		t.Fatal(err)
	}
	if p0 > cfg.TargetP && v1 <= v0 {
		t.Errorf("over-pressurized box did not expand: V %g -> %g (P %g -> %g)", v0, v1, p0, p1)
	}
	if math.Abs(p1-cfg.TargetP) > math.Abs(p0-cfg.TargetP)*1.2 {
		t.Errorf("pressure moved away from target: %g -> %g (target %g)", p0, p1, cfg.TargetP)
	}
	// The caller's system must be untouched (the engine owns a copy).
	if s.Box.L.X != 19.0 {
		t.Errorf("caller's box mutated to %g", s.Box.L.X)
	}
}

func TestBarostatKeepsConstraintsRigid(t *testing.T) {
	// Molecular scaling must not stretch rigid water.
	s, err := system.Small(false, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s)
	cfg.TargetP = 1.458e-5
	cfg.TauP = 400
	cfg.BarostatInterval = 10
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	e.Step(40)
	for _, c := range s.Top.Constraints {
		d := e.Sys.Box.Dist(e.R[c.I], e.R[c.J])
		if math.Abs(d-c.R)/c.R > 1e-5 {
			t.Fatalf("constraint (%d,%d) stretched to %g (want %g) under NPT", c.I, c.J, d, c.R)
		}
	}
}

func TestExactMethodEngine(t *testing.T) {
	// The O(N*K^3) structure-factor path ("extremely conservative
	// parameters" reference of §5.2) must agree with the mesh engines.
	s, err := system.IonicFluid(20, 12.0, 5.0, 16, 91)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(m LongRangeMethod) *Engine {
		cfg := DefaultConfig(s)
		cfg.Method = m
		cfg.MTSInterval = 1
		cfg.KMax = 14
		e, err := NewEngine(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.ComputeForces()
		return e
	}
	exact := mk(UseExact)
	spme := mk(UseSPME)
	var rms, diff float64
	for i := range exact.F {
		rms += exact.F[i].Norm2()
		diff += exact.F[i].Sub(spme.F[i]).Norm2()
	}
	if rel := math.Sqrt(diff / rms); rel > 5e-3 {
		t.Errorf("exact vs SPME force difference %.3g", rel)
	}
}
