package refmd

import (
	"anton/internal/ff"
	"anton/internal/vec"
)

// Pressure estimates the instantaneous pressure by the virtual volume
// perturbation method: P = rho*kT - dU/dV, with dU/dV from symmetric
// finite differences of the potential energy under affine coordinate
// scaling. It is method-agnostic (the mesh, corrections and truncations
// are all captured automatically), at the cost of two extra force
// evaluations. Units: kcal/mol/Å^3; multiply by 68568 for atm.
//
// Anton accumulates the equivalent virial on 86-bit fixed-point
// datapaths (paper Figure 4c); the reference engine measures it in
// floating point for cross-checks.
func (e *Engine) Pressure() (float64, error) {
	top := e.Sys.Top
	// Count massive particles for the kinetic term.
	n := 0
	for _, a := range top.Atoms {
		if a.Mass > 0 {
			n++
		}
	}
	v0 := e.Sys.Box.Volume()
	kinetic := 2 * e.KineticEnergy() / 3 / v0 // = rho*kT per equipartition

	const eps = 1e-4                         // relative volume perturbation
	uPlus, err := e.energyAtScale(1 + eps/3) // linear scale for +eps volume
	if err != nil {
		return 0, err
	}
	uMinus, err := e.energyAtScale(1 - eps/3)
	if err != nil {
		return 0, err
	}
	dUdV := (uPlus - uMinus) / (2 * eps * v0)
	return kinetic - dUdV, nil
}

// energyAtScale evaluates the potential energy with all coordinates and
// the box scaled by s, on a throwaway engine (the mesh Green's function
// depends on the box, so a fresh solver is required).
func (e *Engine) energyAtScale(s float64) (float64, error) {
	scaled := *e.Sys
	scaled.Box = vec.Box{L: e.Sys.Box.L.Scale(s)}
	scaled.R = make([]vec.V3, len(e.R))
	for i := range e.R {
		scaled.R[i] = e.R[i].Scale(s)
	}
	cfg := e.Cfg
	cfg.MTSInterval = 1
	probe, err := NewEngine(&scaled, cfg)
	if err != nil {
		return 0, err
	}
	// Rigid molecules scale their centers, not their internal geometry:
	// re-place virtual sites; constraint lengths are formally violated by
	// the affine scaling, but for a small eps the energy derivative is
	// dominated by the intermolecular terms, matching the standard
	// molecular-scaling pressure estimator to O(eps).
	ff.PlaceVSites(scaled.Top, scaled.Box, probe.R)
	probe.ComputeForces()
	return probe.PotentialEnergy, nil
}
