package system

import (
	"fmt"
	"math"
	"math/rand"

	"anton/internal/ff"
	"anton/internal/vec"
)

// WaterNumberDensity is liquid water's molecular number density at 300 K,
// molecules/Å^3 (0.997 g/cm^3).
const WaterNumberDensity = 0.0334

// System is a fully assembled chemical system plus the simulation
// parameters the paper used for it (Table 4).
type System struct {
	Name   string
	Top    *ff.Topology
	Params *ff.ParamSet
	Box    vec.Box
	R      []vec.V3 // initial positions (wrapped into the box)

	ProteinAtoms int
	Ions         int
	Waters       int
	Model        ff.WaterModel

	// Paper simulation parameters.
	Cutoff  float64 // range-limited cutoff, Å
	Mesh    int     // FFT mesh points per axis
	RSpread float64 // GSE spreading cutoff, Å
}

// NAtoms returns the total particle count.
func (s *System) NAtoms() int { return s.Top.NAtoms() }

// Spec describes a system to build.
type Spec struct {
	Name         string
	TotalAtoms   int
	Side         float64 // cubic box edge, Å
	Cutoff       float64
	Mesh         int
	ProteinAtoms int // 0 for water-only
	Ions         int // negative counterions; protein carries +Ions
	Model        ff.WaterModel
	Seed         int64
}

// Build assembles the system: protein at the box center (if any), ions
// and water on a jittered lattice filling the rest of the box at liquid
// density, topology exclusions built, and everything wrapped into the
// box.
func Build(spec Spec) (*System, error) {
	sites := spec.Model.SitesPerMolecule()
	waterAtoms := spec.TotalAtoms - spec.ProteinAtoms - spec.Ions
	if waterAtoms < 0 || waterAtoms%sites != 0 {
		return nil, fmt.Errorf("system %s: %d atoms cannot split into protein %d + ions %d + %d-site waters",
			spec.Name, spec.TotalAtoms, spec.ProteinAtoms, spec.Ions, sites)
	}
	nWater := waterAtoms / sites
	box := vec.Cube(spec.Side)
	rng := rand.New(rand.NewSource(spec.Seed))

	top := &ff.Topology{Scale14Elec: 1.0 / 1.2, Scale14LJ: 0.5}
	params := &ff.ParamSet{}
	var r []vec.V3

	center := vec.V3{X: spec.Side / 2, Y: spec.Side / 2, Z: spec.Side / 2}
	if spec.ProteinAtoms > 0 {
		pr := BuildProtein(top, params, spec.ProteinAtoms, center, spec.Ions, 0)
		r = append(r, pr...)
	}

	// Occupancy grid of protein atoms for clash-free water placement.
	occ := newClashGrid(box, 2.6)
	for _, p := range r {
		occ.add(box.Wrap(p))
	}

	// Water lattice: spacing chosen so sites clear of the protein
	// comfortably exceed the required count; the first nWater clash-free
	// sites in scan order are used. If the carve-out around the protein
	// eats too many sites, retry on a denser lattice.
	free := box.Volume() - float64(spec.ProteinAtoms)/0.14 // ~protein atom density
	if free < float64(nWater)/WaterNumberDensity*0.8 {
		return nil, fmt.Errorf("system %s: box too small for %d waters", spec.Name, nWater)
	}
	needed := nWater + spec.Ions
	var cand []vec.V3
	for _, factor := range []float64{0.96, 0.9, 0.84, 0.76} {
		cand = cand[:0]
		spacing := math.Cbrt(free/float64(needed)) * factor
		n := int(spec.Side / spacing)
		if n < 1 {
			n = 1
		}
		actual := spec.Side / float64(n)
		for k := 0; k < n && len(cand) < needed; k++ {
			for j := 0; j < n && len(cand) < needed; j++ {
				for i := 0; i < n && len(cand) < needed; i++ {
					p := vec.V3{
						X: (float64(i) + 0.5) * actual,
						Y: (float64(j) + 0.5) * actual,
						Z: (float64(k) + 0.5) * actual,
					}
					if occ.near(p, 2.3) {
						continue
					}
					cand = append(cand, p)
				}
			}
		}
		if len(cand) >= needed {
			break
		}
	}
	if len(cand) < needed {
		return nil, fmt.Errorf("system %s: found only %d of %d solvent sites", spec.Name, len(cand), needed)
	}
	resID := spec.ProteinAtoms/AtomsPerResidue + 1
	for s := 0; s < needed; s++ {
		// Small jitter breaks lattice artifacts.
		p := cand[s].Add(vec.V3{
			X: (rng.Float64() - 0.5) * 0.3,
			Y: (rng.Float64() - 0.5) * 0.3,
			Z: (rng.Float64() - 0.5) * 0.3,
		})
		if s < spec.Ions {
			top.Atoms = append(top.Atoms, ff.Atom{
				Name: "CL", Mass: ff.MassCl, Charge: -1,
				LJType: ljClass(params, "ION"), Residue: resID,
			})
			r = append(r, p)
			occ.add(box.Wrap(p))
			resID++
			continue
		}
		// Random orientation, retried until the hydrogens clear all
		// previously placed atoms; if no trial clears the threshold, keep
		// the orientation with the largest clearance (a cheap
		// deterministic packing pass).
		var bestU, bestV vec.V3
		bestClear := -1.0
		for try := 0; try < 80; try++ {
			u := randomUnit(rng)
			v := perpUnit(u, rng)
			clear := math.Inf(1)
			for _, gp := range ff.WaterGeometry(spec.Model, p, u, v) {
				if d := occ.minDist(box.Wrap(gp), 2.0); d < clear {
					clear = d
				}
			}
			if clear > bestClear {
				bestU, bestV, bestClear = u, v, clear
			}
			if bestClear >= 1.65 {
				break
			}
		}
		wr := ff.AddWater(top, params, spec.Model, p, bestU, bestV, resID)
		r = append(r, wr...)
		for _, gp := range wr {
			occ.add(box.Wrap(gp))
		}
		resID++
	}

	top.BuildExclusions()
	if err := top.Validate(); err != nil {
		return nil, fmt.Errorf("system %s: %w", spec.Name, err)
	}
	if top.NAtoms() != spec.TotalAtoms {
		return nil, fmt.Errorf("system %s: built %d atoms, want %d", spec.Name, top.NAtoms(), spec.TotalAtoms)
	}
	for i := range r {
		r[i] = box.Wrap(r[i])
	}
	return &System{
		Name:         spec.Name,
		Top:          top,
		Params:       params,
		Box:          box,
		R:            r,
		ProteinAtoms: spec.ProteinAtoms,
		Ions:         spec.Ions,
		Waters:       nWater,
		Model:        spec.Model,
		Cutoff:       spec.Cutoff,
		Mesh:         spec.Mesh,
		RSpread:      rspreadFor(spec.Cutoff),
	}, nil
}

// rspreadFor picks the charge-spreading cutoff: roughly 0.68 of the
// range-limited cutoff, the ratio of the paper's BPTI run (7.1 / 10.4).
func rspreadFor(cutoff float64) float64 { return cutoff * 7.1 / 10.4 }

func randomUnit(rng *rand.Rand) vec.V3 {
	for {
		v := vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

func perpUnit(u vec.V3, rng *rand.Rand) vec.V3 {
	for {
		w := randomUnit(rng)
		p := w.Sub(u.Scale(w.Dot(u)))
		if n := p.Norm(); n > 1e-3 {
			return p.Scale(1 / n)
		}
	}
}
