package system

import (
	"math"
	"math/rand"
	"testing"

	"anton/internal/ff"
	"anton/internal/vec"
)

func TestSmallSystemBuilds(t *testing.T) {
	for _, protein := range []bool{false, true} {
		s, err := Small(protein, 1)
		if err != nil {
			t.Fatalf("Small(%v): %v", protein, err)
		}
		if s.NAtoms() != 645 {
			t.Errorf("atoms: got %d, want 645", s.NAtoms())
		}
		if len(s.R) != s.NAtoms() {
			t.Errorf("positions %d != atoms %d", len(s.R), s.NAtoms())
		}
		if q := s.Top.TotalCharge(); math.Abs(q) > 1e-9 {
			t.Errorf("net charge %g", q)
		}
	}
}

func TestNamedSystemsMatchPaperCounts(t *testing.T) {
	// Particle counts and box sizes from Table 4 and section 5.3.
	want := map[string]struct {
		atoms int
		side  float64
	}{
		"gpW":    {9865, 46.8},
		"DHFR":   {23558, 62.2},
		"aSFP":   {48423, 78.8},
		"NADHOx": {78017, 92.6},
		"FtsZ":   {98236, 99.8},
		"T7Lig":  {116650, 105.6},
		"BPTI":   {17758, 51.3},
	}
	for name, w := range want {
		spec, ok := SpecFor(name)
		if !ok {
			t.Fatalf("missing system %s", name)
		}
		if spec.TotalAtoms != w.atoms || spec.Side != w.side {
			t.Errorf("%s: spec %d/%g, want %d/%g", name, spec.TotalAtoms, spec.Side, w.atoms, w.side)
		}
	}
}

func TestBuildGpW(t *testing.T) {
	s, err := ByName("gpW")
	if err != nil {
		t.Fatal(err)
	}
	if s.NAtoms() != 9865 {
		t.Fatalf("gpW atoms: got %d, want 9865", s.NAtoms())
	}
	if s.Waters != 3001 || s.ProteinAtoms != 862 {
		t.Errorf("composition: %d waters, %d protein atoms", s.Waters, s.ProteinAtoms)
	}
	// Positions are inside the box.
	for i, p := range s.R {
		if p.X < 0 || p.X >= s.Box.L.X || p.Y < 0 || p.Y >= s.Box.L.Y || p.Z < 0 || p.Z >= s.Box.L.Z {
			t.Fatalf("atom %d outside box: %v", i, p)
		}
	}
	// Water density in the free volume is near liquid density.
	density := float64(s.Waters) / (s.Box.Volume() - float64(s.ProteinAtoms)/0.14)
	if density < 0.8*WaterNumberDensity || density > 1.2*WaterNumberDensity {
		t.Errorf("water density %g far from %g", density, WaterNumberDensity)
	}
}

func TestBuildBPTIComposition(t *testing.T) {
	// The paper's exact composition: 892 protein atoms, 6 chloride ions,
	// 4215 four-site waters (section 5.3).
	s, err := ByName("BPTI")
	if err != nil {
		t.Fatal(err)
	}
	if s.ProteinAtoms != 892 || s.Ions != 6 || s.Waters != 4215 {
		t.Errorf("BPTI: protein %d ions %d waters %d", s.ProteinAtoms, s.Ions, s.Waters)
	}
	if s.Model != ff.TIP4PEw {
		t.Error("BPTI must use TIP4P-Ew")
	}
	if s.NAtoms() != 17758 {
		t.Errorf("BPTI particles: %d", s.NAtoms())
	}
	if q := s.Top.TotalCharge(); math.Abs(q) > 1e-9 {
		t.Errorf("BPTI net charge %g (protein +6 should balance 6 Cl-)", q)
	}
	// Virtual sites: one per water.
	if len(s.Top.VSites) != 4215 {
		t.Errorf("vsites: %d", len(s.Top.VSites))
	}
}

func TestWaterOnly(t *testing.T) {
	s, err := WaterOnly("gpW")
	if err != nil {
		t.Fatal(err)
	}
	if s.ProteinAtoms != 0 {
		t.Error("water-only system has protein atoms")
	}
	if s.Top.NAtoms()%3 != 0 {
		t.Error("water-only atom count not a multiple of 3")
	}
	if len(s.Top.Bonds) != 0 {
		t.Errorf("water-only system has %d bond terms (rigid water needs none)", len(s.Top.Bonds))
	}
}

func TestProteinTopologyConsistency(t *testing.T) {
	s, err := Small(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := s.Top
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every bond's equilibrium matches the built geometry.
	for _, b := range top.Bonds {
		d := s.Box.Dist(s.R[b.I], s.R[b.J])
		if math.Abs(d-b.R0) > 1e-9 {
			t.Fatalf("bond (%d,%d): geometry %g vs R0 %g", b.I, b.J, d, b.R0)
		}
	}
	// Every angle too.
	for _, a := range top.Angles {
		th := vec.Angle(
			s.Box.MinImage(s.R[a.I].Sub(s.R[a.J])),
			vec.Zero,
			s.Box.MinImage(s.R[a.K].Sub(s.R[a.J])))
		if math.Abs(th-a.Theta0) > 1e-9 {
			t.Fatalf("angle (%d,%d,%d): geometry %g vs Theta0 %g", a.I, a.J, a.K, th, a.Theta0)
		}
	}
	// Initial bonded energy is essentially zero (relaxed geometry), and
	// dihedrals are at their minima.
	e := ff.BondedEnergy(top, s.Box, s.R)
	if e > 1e-6*float64(len(top.Bonds)+len(top.Angles)+1) {
		t.Errorf("initial bonded energy %g not relaxed", e)
	}
}

func TestProteinHydrogensConstrained(t *testing.T) {
	s, err := Small(true, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Top.Bonds {
		if s.Top.Atoms[b.I].Name[0] == 'H' || s.Top.Atoms[b.J].Name[0] == 'H' {
			t.Fatalf("bond (%d,%d) to hydrogen should be a constraint", b.I, b.J)
		}
	}
	// And constraints to H exist.
	nH := 0
	for _, c := range s.Top.Constraints {
		if s.Top.Atoms[c.I].Name[0] == 'H' || s.Top.Atoms[c.J].Name[0] == 'H' {
			nH++
		}
	}
	if nH == 0 {
		t.Error("no hydrogen constraints found")
	}
}

func TestNoInitialClashes(t *testing.T) {
	s, err := Small(true, 7)
	if err != nil {
		t.Fatal(err)
	}
	// No nonbonded (non-excluded, different-residue) pair should start
	// closer than ~1.6 Å.
	minD := math.Inf(1)
	for i := 0; i < s.NAtoms(); i++ {
		for j := i + 1; j < s.NAtoms(); j++ {
			if s.Top.Atoms[i].Residue == s.Top.Atoms[j].Residue {
				continue
			}
			if s.Top.Excluded(i, j) {
				continue
			}
			if d := s.Box.Dist(s.R[i], s.R[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 1.45 {
		t.Errorf("closest nonbonded inter-residue contact %g Å — clash", minD)
	}
}

func TestInitVelocitiesTemperature(t *testing.T) {
	s, err := Small(false, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	v := InitVelocities(s.Top, 300, rng)
	// Kinetic temperature ~300 K: KE = (3N-3)/2 kT for unconstrained
	// counting (constraints are applied later; the raw draw is 3N-3 DoF).
	ke := 0.0
	nDof := 0
	for i, a := range s.Top.Atoms {
		if a.Mass == 0 {
			continue
		}
		ke += 0.5 * ff.VelToKinetic * a.Mass * v[i].Norm2()
		nDof += 3
	}
	T := 2 * ke / (float64(nDof-3) * ff.KB)
	if math.Abs(T-300) > 25 {
		t.Errorf("initial temperature %g, want ~300", T)
	}
	// Zero net momentum.
	var p vec.V3
	for i, a := range s.Top.Atoms {
		p = p.Add(v[i].Scale(a.Mass))
	}
	if p.Norm() > 1e-9 {
		t.Errorf("net momentum %v", p)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Name: "bad", TotalAtoms: 100, Side: 20, Model: ff.TIP3P}); err == nil {
		t.Error("non-divisible atom count accepted")
	}
	if _, err := Build(Spec{Name: "toodense", TotalAtoms: 3000, Side: 10, Model: ff.TIP3P}); err == nil {
		t.Error("over-dense system accepted")
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := WaterOnly("nonexistent"); err == nil {
		t.Error("unknown water-only name accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Small(true, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Small(true, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.R {
		if a.R[i] != b.R[i] {
			t.Fatalf("position %d differs between identical builds", i)
		}
	}
}

func TestCATraceAndSelections(t *testing.T) {
	s, err := Small(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	cas, err := s.CATrace()
	if err != nil {
		t.Fatal(err)
	}
	nRes := s.ProteinAtoms / AtomsPerResidue
	if len(cas) != nRes {
		t.Fatalf("CA trace: %d, want %d", len(cas), nRes)
	}
	sel, err := s.CASelection()
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range sel {
		if s.Top.Atoms[idx].Name != "CA" {
			t.Fatalf("selection %d points at %s", i, s.Top.Atoms[idx].Name)
		}
		if s.R[idx] != cas[i] {
			t.Fatalf("trace/selection mismatch at %d", i)
		}
	}
	bonds, err := s.BackboneNHBonds()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bonds {
		if s.Top.Atoms[b[0]].Name != "N" || s.Top.Atoms[b[1]].Name != "HN" {
			t.Fatalf("NH bond names: %s-%s", s.Top.Atoms[b[0]].Name, s.Top.Atoms[b[1]].Name)
		}
	}
	// Water-only systems have no protein selections.
	w, _ := Small(false, 3)
	if _, err := w.CATrace(); err == nil {
		t.Error("water-only CA trace accepted")
	}
}
