package system

import (
	"math"

	"anton/internal/vec"
)

// clashGrid is a uniform cell grid over the periodic box used to test
// candidate water sites against already-placed atoms.
type clashGrid struct {
	box   vec.Box
	n     [3]int
	cell  [3]float64
	cells map[int][]vec.V3
}

func newClashGrid(box vec.Box, cellSize float64) *clashGrid {
	g := &clashGrid{box: box, cells: make(map[int][]vec.V3)}
	dims := [3]float64{box.L.X, box.L.Y, box.L.Z}
	for a := 0; a < 3; a++ {
		g.n[a] = int(math.Max(1, math.Floor(dims[a]/cellSize)))
		g.cell[a] = dims[a] / float64(g.n[a])
	}
	return g
}

func (g *clashGrid) index(p vec.V3) (int, int, int) {
	w := g.box.Wrap(p)
	i := int(w.X / g.cell[0])
	j := int(w.Y / g.cell[1])
	k := int(w.Z / g.cell[2])
	if i >= g.n[0] {
		i = g.n[0] - 1
	}
	if j >= g.n[1] {
		j = g.n[1] - 1
	}
	if k >= g.n[2] {
		k = g.n[2] - 1
	}
	return i, j, k
}

func (g *clashGrid) lin(i, j, k int) int {
	return (k*g.n[1]+j)*g.n[0] + i
}

func (g *clashGrid) add(p vec.V3) {
	i, j, k := g.index(p)
	l := g.lin(i, j, k)
	g.cells[l] = append(g.cells[l], p)
}

// minDist returns the distance from p to the nearest stored atom within
// the search horizon, or horizon if none is closer (periodic).
func (g *clashGrid) minDist(p vec.V3, horizon float64) float64 {
	i0, j0, k0 := g.index(p)
	best := horizon * horizon
	ri := int(math.Ceil(horizon / g.cell[0]))
	rj := int(math.Ceil(horizon / g.cell[1]))
	rk := int(math.Ceil(horizon / g.cell[2]))
	for dk := -rk; dk <= rk; dk++ {
		k := ((k0+dk)%g.n[2] + g.n[2]) % g.n[2]
		for dj := -rj; dj <= rj; dj++ {
			j := ((j0+dj)%g.n[1] + g.n[1]) % g.n[1]
			for di := -ri; di <= ri; di++ {
				i := ((i0+di)%g.n[0] + g.n[0]) % g.n[0]
				for _, q := range g.cells[g.lin(i, j, k)] {
					if d2 := g.box.Dist2(p, q); d2 < best {
						best = d2
					}
				}
			}
		}
	}
	return math.Sqrt(best)
}

// near reports whether any stored atom lies within dist of p (periodic).
func (g *clashGrid) near(p vec.V3, dist float64) bool {
	i0, j0, k0 := g.index(p)
	d2 := dist * dist
	// Cell size may be below dist; search a radius of cells covering it.
	ri := int(math.Ceil(dist / g.cell[0]))
	rj := int(math.Ceil(dist / g.cell[1]))
	rk := int(math.Ceil(dist / g.cell[2]))
	for dk := -rk; dk <= rk; dk++ {
		k := ((k0+dk)%g.n[2] + g.n[2]) % g.n[2]
		for dj := -rj; dj <= rj; dj++ {
			j := ((j0+dj)%g.n[1] + g.n[1]) % g.n[1]
			for di := -ri; di <= ri; di++ {
				i := ((i0+di)%g.n[0] + g.n[0]) % g.n[0]
				for _, q := range g.cells[g.lin(i, j, k)] {
					if g.box.Dist2(p, q) <= d2 {
						return true
					}
				}
			}
		}
	}
	return false
}
