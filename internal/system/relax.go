package system

import (
	"sort"

	"anton/internal/vec"
)

// proteinNeighborSet returns the set of atom pairs (keys i<<32|j, i<j)
// within two covalent bonds of each other (1-2 and 1-3) for the standard
// residue layout, which the clash relaxation must leave alone.
func proteinNeighborSet(nRes int, capPairs [][2]int, base int) map[uint64]bool {
	adj := make(map[int][]int)
	link := func(i, j int) {
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for i := 0; i < nRes; i++ {
		o := base + i*AtomsPerResidue
		for _, tb := range templateBonds {
			link(o+tb[0], o+tb[1])
		}
		if i+1 < nRes {
			link(o+4, o+AtomsPerResidue)
		}
	}
	for _, cp := range capPairs {
		link(cp[0], cp[1])
	}
	set := make(map[uint64]bool)
	add := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		set[uint64(i)<<32|uint64(uint32(j))] = true
	}
	for i, nbrs := range adj {
		for _, j := range nbrs {
			add(i, j) // 1-2
			for _, k := range adj[j] {
				add(i, k) // 1-3
			}
		}
	}
	return set
}

// relaxHydrogens resolves remaining hydrogen clashes by rotating each
// hydrogen about its parent heavy atom (preserving the X-H distance that
// the constraints will be derived from): the hydrogen is pushed away from
// clash partners and re-projected onto its bond sphere.
func relaxHydrogens(r []vec.V3, hParent map[int]int, neighbors map[uint64]bool, dmin float64, maxIter int) {
	n := len(r)
	hs := make([]int, 0, len(hParent))
	for h := range hParent {
		hs = append(hs, h)
	}
	sort.Ints(hs)
	for iter := 0; iter < maxIter; iter++ {
		cells := make(map[[3]int][]int)
		key := func(p vec.V3) [3]int {
			return [3]int{int(p.X / dmin), int(p.Y / dmin), int(p.Z / dmin)}
		}
		for i := 0; i < n; i++ {
			cells[key(r[i])] = append(cells[key(r[i])], i)
		}
		moved := false
		for _, h := range hs {
			parent := hParent[h]
			bondLen := vec.Dist(r[h], r[parent])
			var push vec.V3
			k := key(r[h])
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for dz := -1; dz <= 1; dz++ {
						for _, j := range cells[[3]int{k[0] + dx, k[1] + dy, k[2] + dz}] {
							if j == h {
								continue
							}
							pk := pairKey64(h, j)
							if neighbors[pk] {
								continue
							}
							d := r[h].Sub(r[j])
							dist := d.Norm()
							if dist >= dmin || dist < 1e-9 {
								continue
							}
							push = push.Add(d.Scale((dmin - dist) / dist))
						}
					}
				}
			}
			if push.Norm() == 0 {
				continue
			}
			moved = true
			// Push, then re-project onto the bond sphere around the parent.
			cand := r[h].Add(push.Scale(0.5))
			dir := cand.Sub(r[parent])
			if dn := dir.Norm(); dn > 1e-9 {
				r[h] = r[parent].Add(dir.Scale(bondLen / dn))
			}
		}
		if !moved {
			return
		}
	}
}

func pairKey64(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(i)<<32 | uint64(uint32(j))
}

// relaxProteinClashes iteratively pushes apart non-neighbor atom pairs
// closer than dmin, moving both atoms symmetrically along their axis.
// Atoms flagged in skip (hydrogens) take no part — they are repositioned
// rigidly by the caller afterwards. Deterministic: pairs are processed in
// sorted order each sweep.
// bondTarget fixes the distance between two heavy atoms during clash
// relaxation (the covalent skeleton).
type bondTarget struct {
	i, j int
	r    float64
}

func relaxProteinClashes(r []vec.V3, neighbors map[uint64]bool, dmin float64, maxIter int, skip []bool, bonds []bondTarget) {
	n := len(r)
	restoreBonds := func() {
		for pass := 0; pass < 8; pass++ {
			for _, b := range bonds {
				d := r[b.j].Sub(r[b.i])
				dist := d.Norm()
				if dist < 1e-9 {
					d = vec.V3{X: 1}
					dist = 1
				}
				corr := (b.r - dist) / 2
				u := d.Scale(1 / dist)
				r[b.i] = r[b.i].Sub(u.Scale(corr))
				r[b.j] = r[b.j].Add(u.Scale(corr))
			}
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		// Spatial hash on a dmin-sized grid.
		cells := make(map[[3]int][]int)
		key := func(p vec.V3) [3]int {
			return [3]int{int(p.X / dmin), int(p.Y / dmin), int(p.Z / dmin)}
		}
		for i := 0; i < n; i++ {
			k := key(r[i])
			cells[k] = append(cells[k], i)
		}
		type clash struct{ i, j int }
		var clashes []clash
		for i := 0; i < n; i++ {
			if skip != nil && skip[i] {
				continue
			}
			k := key(r[i])
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for dz := -1; dz <= 1; dz++ {
						for _, j := range cells[[3]int{k[0] + dx, k[1] + dy, k[2] + dz}] {
							if j <= i {
								continue
							}
							if skip != nil && skip[j] {
								continue
							}
							pk := uint64(i)<<32 | uint64(uint32(j))
							if neighbors[pk] {
								continue
							}
							if vec.Dist2(r[i], r[j]) < dmin*dmin {
								clashes = append(clashes, clash{i, j})
							}
						}
					}
				}
			}
		}
		if len(clashes) == 0 {
			restoreBonds()
			return
		}
		sort.Slice(clashes, func(a, b int) bool {
			if clashes[a].i != clashes[b].i {
				return clashes[a].i < clashes[b].i
			}
			return clashes[a].j < clashes[b].j
		})
		for _, c := range clashes {
			d := r[c.j].Sub(r[c.i])
			dist := d.Norm()
			if dist < 1e-6 {
				// Coincident: separate along a fixed axis.
				d = vec.V3{X: 1}
				dist = 1
			}
			push := (dmin - dist) / 2 * 1.05
			if push <= 0 {
				continue
			}
			u := d.Scale(1 / dist)
			r[c.i] = r[c.i].Sub(u.Scale(push))
			r[c.j] = r[c.j].Add(u.Scale(push))
		}
		// Keep the covalent skeleton intact: clash pushes must not
		// stretch or collapse bonded heavy-atom pairs.
		restoreBonds()
	}
}
