package system

import (
	"fmt"
	"math/rand"

	"anton/internal/ff"
	"anton/internal/vec"
)

// IonicFluid builds a neutral fluid of nPairs (+1, -1) ion pairs with
// LJ cores and no bonds, constraints or virtual sites — the simplest
// system exercising every force path (range-limited, mesh, none of the
// correction terms) while remaining exactly time-reversible on the Anton
// engine (no SHAKE).
func IonicFluid(nPairs int, side float64, cutoff float64, mesh int, seed int64) (*System, error) {
	if nPairs < 1 {
		return nil, fmt.Errorf("system: need at least one ion pair")
	}
	box := vec.Cube(side)
	rng := rand.New(rand.NewSource(seed))
	top := &ff.Topology{Scale14Elec: 1, Scale14LJ: 1}
	params := &ff.ParamSet{}
	ljP := ensure(params, "cation", 3.3, 0.10)
	ljM := ensure(params, "anion", 4.4, 0.10)

	n := 2 * nPairs
	r := make([]vec.V3, 0, n)
	occ := newClashGrid(box, 3.0)
	// Jittered lattice placement, alternating charges.
	lat := 1
	for lat*lat*lat < n {
		lat++
	}
	a := side / float64(lat)
	placed := 0
	for k := 0; k < lat && placed < n; k++ {
		for j := 0; j < lat && placed < n; j++ {
			for i := 0; i < lat && placed < n; i++ {
				p := vec.V3{
					X: (float64(i)+0.5)*a + (rng.Float64()-0.5)*0.3,
					Y: (float64(j)+0.5)*a + (rng.Float64()-0.5)*0.3,
					Z: (float64(k)+0.5)*a + (rng.Float64()-0.5)*0.3,
				}
				p = box.Wrap(p)
				if occ.near(p, 2.4) {
					continue
				}
				q := 1.0
				lj := ljP
				name := "NA"
				mass := 22.99
				if placed%2 == 1 {
					q, lj, name, mass = -1.0, ljM, "CL", ff.MassCl
				}
				top.Atoms = append(top.Atoms, ff.Atom{
					Name: name, Mass: mass, Charge: q, LJType: lj, Residue: placed,
				})
				r = append(r, p)
				occ.add(p)
				placed++
			}
		}
	}
	if placed < n {
		return nil, fmt.Errorf("system: placed only %d of %d ions", placed, n)
	}
	top.BuildExclusions()
	return &System{
		Name:    fmt.Sprintf("ionic-%d", nPairs),
		Top:     top,
		Params:  params,
		Box:     box,
		R:       r,
		Cutoff:  cutoff,
		Mesh:    mesh,
		RSpread: rspreadFor(cutoff),
	}, nil
}

// Argon builds an uncharged Lennard-Jones fluid (argon-like) — the
// minimal stable MD system, handy for integrator-focused tests.
func Argon(nAtoms int, side float64, cutoff float64, seed int64) (*System, error) {
	box := vec.Cube(side)
	rng := rand.New(rand.NewSource(seed))
	top := &ff.Topology{Scale14Elec: 1, Scale14LJ: 1}
	params := &ff.ParamSet{}
	lj := ensure(params, "argon", 3.4, 0.238)
	lat := 1
	for lat*lat*lat < nAtoms {
		lat++
	}
	a := side / float64(lat)
	var r []vec.V3
	for k := 0; k < lat && len(r) < nAtoms; k++ {
		for j := 0; j < lat && len(r) < nAtoms; j++ {
			for i := 0; i < lat && len(r) < nAtoms; i++ {
				p := vec.V3{
					X: (float64(i)+0.5)*a + (rng.Float64()-0.5)*0.2,
					Y: (float64(j)+0.5)*a + (rng.Float64()-0.5)*0.2,
					Z: (float64(k)+0.5)*a + (rng.Float64()-0.5)*0.2,
				}
				top.Atoms = append(top.Atoms, ff.Atom{Name: "AR", Mass: 39.95, LJType: lj, Residue: len(r)})
				r = append(r, box.Wrap(p))
			}
		}
	}
	if len(r) < nAtoms {
		return nil, fmt.Errorf("system: argon lattice underfilled")
	}
	top.BuildExclusions()
	return &System{
		Name:    fmt.Sprintf("argon-%d", nAtoms),
		Top:     top,
		Params:  params,
		Box:     box,
		R:       r,
		Cutoff:  cutoff,
		Mesh:    16,
		RSpread: rspreadFor(cutoff),
	}, nil
}
