package system

import (
	"fmt"

	"anton/internal/vec"
)

// CATrace extracts the alpha-carbon positions of a built system's
// protein — the native structure handed to coarse-grained models
// (internal/gomodel) and to structural analyses.
func (s *System) CATrace() ([]vec.V3, error) {
	if s.ProteinAtoms == 0 {
		return nil, fmt.Errorf("system %s: no protein", s.Name)
	}
	nRes := s.ProteinAtoms / AtomsPerResidue
	out := make([]vec.V3, 0, nRes)
	for i := 0; i < nRes; i++ {
		out = append(out, s.R[i*AtomsPerResidue+2]) // template index 2 = CA
	}
	return out, nil
}

// BackboneNHBonds returns the (N, HN) atom index pairs of each residue —
// the bond vectors whose order parameters Figure 6 reports.
func (s *System) BackboneNHBonds() ([][2]int, error) {
	if s.ProteinAtoms == 0 {
		return nil, fmt.Errorf("system %s: no protein", s.Name)
	}
	nRes := s.ProteinAtoms / AtomsPerResidue
	out := make([][2]int, 0, nRes)
	for i := 0; i < nRes; i++ {
		base := i * AtomsPerResidue
		out = append(out, [2]int{base, base + 1})
	}
	return out, nil
}

// CASelection returns the alpha-carbon atom indices (the standard
// alignment selection for superposition).
func (s *System) CASelection() ([]int, error) {
	if s.ProteinAtoms == 0 {
		return nil, fmt.Errorf("system %s: no protein", s.Name)
	}
	nRes := s.ProteinAtoms / AtomsPerResidue
	out := make([]int, 0, nRes)
	for i := 0; i < nRes; i++ {
		out = append(out, i*AtomsPerResidue+2)
	}
	return out, nil
}
