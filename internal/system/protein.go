// Package system builds the chemical systems the paper benchmarks:
// protein-in-water systems with the exact particle counts, box sizes and
// water models of Table 4 and section 5.3 (gpW, DHFR, aSFP, NADHOx, FtsZ,
// T7Lig, BPTI, GB3), matching water-only systems (Figure 5), and the
// initial velocity distributions.
//
// Real crystal structures and force-field parameter databases are not
// available offline, so proteins are synthesized: a compact self-avoiding
// backbone walk carrying a realistic all-atom residue template (backbone
// N/H/CA/HA/C/O plus a short side chain), with bonds, angles, torsions,
// exclusions and H-bond constraints generated from the built geometry.
// Performance and numerics depend on particle counts, densities, cutoffs
// and topology statistics — all preserved — not on biological identity
// (see DESIGN.md, substitutions).
package system

import (
	"math"
	"math/rand"

	"anton/internal/ff"
	"anton/internal/vec"
)

// residueTemplate is the per-residue atom layout in the local frame:
// CA at the origin, +x toward the next residue, +z "up".
type templAtom struct {
	name   string
	mass   float64
	charge float64
	lj     string // LJ class name
	pos    vec.V3
}

var residueTemplate = []templAtom{
	{"N", ff.MassN, -0.40, "N", vec.V3{X: -1.45}},
	{"HN", ff.MassH, +0.30, "H", vec.V3{X: -1.80, Y: 0.90}},
	{"CA", ff.MassC, +0.10, "C", vec.V3{}},
	{"HA", ff.MassH, +0.05, "H", vec.V3{Y: -0.70, Z: 0.80}},
	{"C", ff.MassC, +0.55, "C", vec.V3{X: 0.75, Y: 1.25}},
	{"O", ff.MassO, -0.55, "O", vec.V3{X: 0.60, Y: 2.45}},
	{"CB", ff.MassC, -0.10, "C", vec.V3{X: 0.50, Y: -0.80, Z: -1.20}},
	{"HB1", ff.MassH, +0.05, "H", vec.V3{X: 1.20, Y: -0.30, Z: -1.85}},
	{"HB2", ff.MassH, +0.05, "H", vec.V3{X: -0.30, Y: -1.10, Z: -1.85}},
	{"CG", ff.MassC, -0.15, "C", vec.V3{X: 1.20, Y: -2.00, Z: -0.80}},
	{"HG", ff.MassH, +0.10, "H", vec.V3{X: 1.80, Y: -2.50, Z: -1.50}},
}

// AtomsPerResidue is the size of the residue template.
var AtomsPerResidue = len(residueTemplate)

// caSpacing is the distance between consecutive alpha carbons.
const caSpacing = 3.8

// templateBonds are intra-residue bonds as template-index pairs.
var templateBonds = [][2]int{
	{0, 1}, {0, 2}, {2, 3}, {2, 4}, {4, 5}, {2, 6}, {6, 7}, {6, 8}, {6, 9}, {9, 10},
}

// ljClasses registers the protein LJ classes on first use.
func ljClass(p *ff.ParamSet, name string) int {
	switch name {
	case "C":
		return ensure(p, "prot-C", 3.40, 0.086)
	case "N":
		return ensure(p, "prot-N", 3.25, 0.170)
	case "O":
		return ensure(p, "prot-O", 2.96, 0.210)
	case "H":
		return ensure(p, "prot-H", 1.00, 0.015)
	case "ION":
		return ensure(p, "ion", 4.40, 0.100)
	}
	panic("system: unknown LJ class " + name)
}

func ensure(p *ff.ParamSet, name string, sigma, eps float64) int {
	for i, t := range p.LJTypes {
		if t.Name == name {
			return i
		}
	}
	p.LJTypes = append(p.LJTypes, ff.LJType{Name: name, Sigma: sigma, Epsilon: eps})
	return len(p.LJTypes) - 1
}

// backboneWalk returns nRes CA positions on a compact serpentine lattice
// walk (self-avoiding by construction) centered at the origin.
func backboneWalk(nRes int) []vec.V3 {
	// Fill a near-cubic lattice of spacing caSpacing in serpentine order.
	side := int(math.Ceil(math.Cbrt(float64(nRes))))
	pos := make([]vec.V3, 0, nRes)
	n := 0
	for k := 0; k < side && n < nRes; k++ {
		for jj := 0; jj < side && n < nRes; jj++ {
			j := jj
			if k%2 == 1 {
				j = side - 1 - jj
			}
			for ii := 0; ii < side && n < nRes; ii++ {
				i := ii
				if (jj+k)%2 == 1 {
					i = side - 1 - ii
				}
				pos = append(pos, vec.V3{
					X: float64(i) * caSpacing,
					Y: float64(j) * caSpacing,
					Z: float64(k) * caSpacing,
				})
				n++
			}
		}
	}
	// Center at the origin.
	var c vec.V3
	for _, p := range pos {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pos)))
	for i := range pos {
		pos[i] = pos[i].Sub(c)
	}
	return pos
}

// BuildProtein appends a synthetic protein with exactly nAtoms atoms to
// the topology, centered at `center`, and returns the atom positions. The
// protein consists of nAtoms/AtomsPerResidue template residues plus
// nAtoms%AtomsPerResidue carbon cap atoms chained to the final side chain,
// so any target atom count is reachable. chargedResidues of the first
// residues carry +1 (on the side-chain carbon), modelling basic residues
// balanced by counterions elsewhere.
func BuildProtein(t *ff.Topology, p *ff.ParamSet, nAtoms int, center vec.V3, chargedResidues int, firstResidue int) []vec.V3 {
	nRes := nAtoms / AtomsPerResidue
	caps := nAtoms % AtomsPerResidue
	if nRes == 0 {
		panic("system: protein too small for one residue")
	}
	cas := backboneWalk(nRes)
	base := len(t.Atoms)
	r := make([]vec.V3, 0, nAtoms)

	// Local frames: forward toward the next CA; up chosen stably.
	for i := 0; i < nRes; i++ {
		var fwd vec.V3
		if i+1 < nRes {
			fwd = cas[i+1].Sub(cas[i]).Unit()
		} else {
			fwd = cas[i].Sub(cas[i-1]).Unit()
		}
		up := vec.V3{Z: 1}
		if math.Abs(fwd.Z) > 0.9 {
			up = vec.V3{Y: 1}
		}
		side := fwd.Cross(up).Unit()
		up = side.Cross(fwd).Unit()
		frame := func(local vec.V3) vec.V3 {
			return center.Add(cas[i]).
				Add(fwd.Scale(local.X)).
				Add(up.Scale(local.Y)).
				Add(side.Scale(local.Z))
		}
		for j, ta := range residueTemplate {
			q := ta.charge
			if j == 9 && i < chargedResidues { // CG of a "basic" residue
				q += 1.0
			}
			t.Atoms = append(t.Atoms, ff.Atom{
				Name:    ta.name,
				Mass:    ta.mass,
				Charge:  q,
				LJType:  ljClass(p, ta.lj),
				Residue: firstResidue + i,
			})
			r = append(r, frame(ta.pos))
		}
	}

	// Cap atoms: a short carbon tail off the last residue's CG. Bond
	// terms are created after the relaxation pass below.
	lastCG := base + (nRes-1)*AtomsPerResidue + 9
	var capPairs [][2]int
	prev := lastCG
	for c := 0; c < caps; c++ {
		idx := len(t.Atoms)
		t.Atoms = append(t.Atoms, ff.Atom{
			Name: "CT", Mass: ff.MassC, Charge: 0,
			LJType: ljClass(p, "C"), Residue: firstResidue + nRes - 1,
		})
		dir := vec.V3{X: 1.25, Y: 0.45 * float64(1-2*(c%2)), Z: 0.3}
		r = append(r, r[prev-base].Add(dir))
		capPairs = append(capPairs, [2]int{prev, idx})
		prev = idx
	}

	// Push apart steric clashes between heavy atoms that are not covalent
	// neighbors (local frames rotate at walk turns, where side chains can
	// collide). Hydrogens ride rigidly on their parent heavy atom so the
	// X-H geometry — and therefore the constraint lengths derived from it
	// below — stays at the template values. This runs *before* bonded
	// parameters are derived, so the relaxed geometry is the mechanical
	// equilibrium of the topology.
	prePos := append([]vec.V3(nil), r...)
	isH := make([]bool, len(r))
	hParent := make(map[int]int)
	for i := 0; i < nRes; i++ {
		o := i * AtomsPerResidue
		for _, tb := range templateBonds {
			a, bb := o+tb[0], o+tb[1]
			switch {
			case residueTemplate[tb[0]].name[0] == 'H':
				isH[a] = true
				hParent[a] = bb
			case residueTemplate[tb[1]].name[0] == 'H':
				isH[bb] = true
				hParent[bb] = a
			}
		}
	}
	neighbors := proteinNeighborSet(nRes, capPairs, base)
	var heavyBonds []bondTarget
	for i := 0; i < nRes; i++ {
		o := i * AtomsPerResidue
		for _, tb := range templateBonds {
			if residueTemplate[tb[0]].name[0] == 'H' || residueTemplate[tb[1]].name[0] == 'H' {
				continue
			}
			heavyBonds = append(heavyBonds, bondTarget{o + tb[0], o + tb[1], vec.Dist(r[o+tb[0]], r[o+tb[1]])})
		}
		if i+1 < nRes {
			heavyBonds = append(heavyBonds, bondTarget{o + 4, o + AtomsPerResidue, vec.Dist(r[o+4], r[o+AtomsPerResidue])})
		}
	}
	for _, cp := range capPairs {
		heavyBonds = append(heavyBonds, bondTarget{cp[0] - base, cp[1] - base, vec.Dist(r[cp[0]-base], r[cp[1]-base])})
	}
	relaxProteinClashes(r, neighbors, 2.6, 60, isH, heavyBonds)
	for h, parent := range hParent {
		r[h] = prePos[h].Add(r[parent].Sub(prePos[parent]))
	}
	relaxHydrogens(r, hParent, neighbors, 1.5, 40)

	// Bonds: intra-residue templates plus peptide links, with equilibrium
	// lengths taken from the built geometry so the initial structure is
	// mechanically relaxed. Bonds to hydrogens become constraints
	// (Table 4: "bond lengths to hydrogen atoms were constrained").
	addBond := func(i, j int) {
		ri, rj := r[i-base], r[j-base]
		if t.Atoms[i].Name[0] == 'H' || t.Atoms[j].Name[0] == 'H' {
			t.Constraints = append(t.Constraints, ff.Constraint{I: i, J: j, R: vec.Dist(ri, rj)})
			return
		}
		t.Bonds = append(t.Bonds, bondFromGeometry(i, j, ri, rj, 300))
	}
	for i := 0; i < nRes; i++ {
		o := base + i*AtomsPerResidue
		for _, tb := range templateBonds {
			addBond(o+tb[0], o+tb[1])
		}
		if i+1 < nRes {
			addBond(o+4, o+AtomsPerResidue) // C(i) - N(i+1)
		}
	}
	for _, cp := range capPairs {
		addBond(cp[0], cp[1])
	}

	// Angles for every bonded-pair sharing an atom, equilibrium at the
	// built geometry.
	addGeneratedAngles(t, base, len(t.Atoms), r, base, 50)
	// Carbonyl planarity: an improper torsion at each backbone C keeps
	// (C, CA, N', O) planar, with the equilibrium at the built geometry.
	for i := 0; i+1 < nRes; i++ {
		o := base + i*AtomsPerResidue
		quad := [4]int{o + 4, o + 2, o + AtomsPerResidue, o + 5} // C, CA, N', O
		chi := vec.Dihedral(r[quad[0]-base], r[quad[1]-base], r[quad[2]-base], r[quad[3]-base])
		t.Impropers = append(t.Impropers, ff.Improper{
			I: quad[0], J: quad[1], K: quad[2], L: quad[3], Chi0: chi, KChi: 10,
		})
	}

	// Backbone torsions with the phase chosen so the built geometry is a
	// minimum: V = K*(1 + cos(n*phi - phase)) minimized at phase = n*phi - pi.
	for i := 0; i+1 < nRes; i++ {
		o := base + i*AtomsPerResidue
		quads := [][4]int{
			{o, o + 2, o + 4, o + AtomsPerResidue},                       // N-CA-C-N'
			{o + 2, o + 4, o + AtomsPerResidue, o + AtomsPerResidue + 2}, // CA-C-N'-CA'
		}
		for _, q := range quads {
			phi := vec.Dihedral(r[q[0]-base], r[q[1]-base], r[q[2]-base], r[q[3]-base])
			phase := math.Mod(3*phi-math.Pi, 2*math.Pi)
			t.Dihedrals = append(t.Dihedrals, ff.Dihedral{
				I: q[0], J: q[1], K: q[2], L: q[3], N: 3, Phase: phase, KPhi: 0.6,
			})
		}
	}
	return r
}

func bondFromGeometry(i, j int, ri, rj vec.V3, k float64) ff.Bond {
	return ff.Bond{I: i, J: j, R0: vec.Dist(ri, rj), K: k}
}

// addGeneratedAngles creates a harmonic angle for every pair of bonds or
// constraints sharing a vertex within [lo, hi), with the equilibrium at
// the current geometry.
func addGeneratedAngles(t *ff.Topology, lo, hi int, r []vec.V3, base int, k float64) {
	adj := make(map[int][]int)
	link := func(i, j int) {
		if i >= lo && i < hi && j >= lo && j < hi {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	for _, b := range t.Bonds {
		link(b.I, b.J)
	}
	for _, c := range t.Constraints {
		link(c.I, c.J)
	}
	for j := lo; j < hi; j++ {
		nbrs := adj[j]
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				i, kk := nbrs[a], nbrs[b]
				// Skip pure H-H-vertex angles inside constrained groups;
				// constraints already fix them.
				theta := vec.Angle(r[i-base], r[j-base], r[kk-base])
				t.Angles = append(t.Angles, ff.Angle{I: i, J: j, K: kk, Theta0: theta, KTheta: k})
			}
		}
	}
}

// Radius returns the approximate radius of a protein with n atoms (used
// for carving the water region).
func Radius(nAtoms int) float64 {
	nRes := nAtoms / AtomsPerResidue
	side := math.Ceil(math.Cbrt(float64(nRes))) * caSpacing
	// Half-diagonal of the walk cube plus the template reach.
	return side*math.Sqrt(3)/2 + 3.5
}

// InitVelocities draws Maxwell-Boltzmann velocities at temperature T (K)
// for every massive atom and removes the center-of-mass momentum. The rng
// makes initialization reproducible.
func InitVelocities(t *ff.Topology, T float64, rng *rand.Rand) []vec.V3 {
	v := make([]vec.V3, len(t.Atoms))
	for i, a := range t.Atoms {
		if a.Mass == 0 {
			continue
		}
		s := math.Sqrt(ff.KB * T / a.Mass * ff.ForceToAccel)
		v[i] = vec.V3{X: s * rng.NormFloat64(), Y: s * rng.NormFloat64(), Z: s * rng.NormFloat64()}
	}
	// Remove net momentum.
	var p vec.V3
	var m float64
	for i, a := range t.Atoms {
		p = p.Add(v[i].Scale(a.Mass))
		m += a.Mass
	}
	drift := p.Scale(1 / m)
	for i, a := range t.Atoms {
		if a.Mass > 0 {
			v[i] = v[i].Sub(drift)
		}
	}
	return v
}
