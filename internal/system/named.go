package system

import (
	"fmt"
	"sort"

	"anton/internal/ff"
)

// Named specs reproduce the paper's benchmark systems exactly by particle
// count, box size, cutoff and mesh (Table 4, section 5.3). Protein atom
// counts are chosen so the remainder divides into whole water molecules;
// where the real protein size is known (DHFR 2489 atoms, BPTI 892 atoms +
// 6 Cl-) the real value is used.
var catalog = map[string]Spec{
	"gpW": {
		Name: "gpW", TotalAtoms: 9865, Side: 46.8, Cutoff: 10.5, Mesh: 32,
		ProteinAtoms: 862, Model: ff.TIP3P, Seed: 101,
	},
	"DHFR": {
		Name: "DHFR", TotalAtoms: 23558, Side: 62.2, Cutoff: 13.0, Mesh: 32,
		ProteinAtoms: 2489, Model: ff.TIP3P, Seed: 102,
	},
	"aSFP": {
		Name: "aSFP", TotalAtoms: 48423, Side: 78.8, Cutoff: 15.5, Mesh: 32,
		ProteinAtoms: 1743, Model: ff.TIP3P, Seed: 103,
	},
	"NADHOx": {
		Name: "NADHOx", TotalAtoms: 78017, Side: 92.6, Cutoff: 10.5, Mesh: 64,
		ProteinAtoms: 3002, Model: ff.TIP3P, Seed: 104,
	},
	"FtsZ": {
		Name: "FtsZ", TotalAtoms: 98236, Side: 99.8, Cutoff: 11.0, Mesh: 64,
		ProteinAtoms: 5350, Model: ff.TIP3P, Seed: 105,
	},
	"T7Lig": {
		Name: "T7Lig", TotalAtoms: 116650, Side: 105.6, Cutoff: 11.0, Mesh: 64,
		ProteinAtoms: 5602, Model: ff.TIP3P, Seed: 106,
	},
	// BPTI, the millisecond system (section 5.3): 17,758 particles = 892
	// protein atoms + 6 chloride ions + 4215 TIP4P-Ew waters x 4 sites,
	// 51.3-Å cube, 10.4-Å cutoff, 32^3 mesh.
	"BPTI": {
		Name: "BPTI", TotalAtoms: 17758, Side: 51.3, Cutoff: 10.4, Mesh: 32,
		ProteinAtoms: 892, Ions: 6, Model: ff.TIP4PEw, Seed: 107,
	},
	// GB3, the 55-residue order-parameter benchmark (Figure 6).
	"GB3": {
		Name: "GB3", TotalAtoms: 4999, Side: 36.5, Cutoff: 10.0, Mesh: 32,
		ProteinAtoms: 605, Ions: 2, Model: ff.TIP3P, Seed: 108,
	},
}

// Names lists the available named systems in a stable order.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table4Names lists the six protein systems of Table 4/Figure 5 in the
// paper's size order.
func Table4Names() []string {
	return []string{"gpW", "DHFR", "aSFP", "NADHOx", "FtsZ", "T7Lig"}
}

// ByName builds the named system.
func ByName(name string) (*System, error) {
	spec, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("system: unknown system %q (have %v)", name, Names())
	}
	return Build(spec)
}

// SpecFor returns the spec of a named system (for inspection without the
// cost of building it).
func SpecFor(name string) (Spec, bool) {
	s, ok := catalog[name]
	return s, ok
}

// WaterOnly builds the water-only counterpart of a named system: the same
// box, cutoff and mesh, with the protein and ions replaced by whole water
// molecules (Figure 5's "water only" series; such systems run faster
// because rigid water needs no bond terms).
func WaterOnly(name string) (*System, error) {
	spec, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("system: unknown system %q", name)
	}
	sites := spec.Model.SitesPerMolecule()
	spec.Name = name + "-water"
	spec.ProteinAtoms = 0
	spec.Ions = 0
	spec.TotalAtoms = spec.TotalAtoms / sites * sites // round to whole molecules
	spec.Seed += 1000
	return Build(spec)
}

// Small builds a reduced system for fast tests: a water box with an
// optional mini-protein, a few hundred atoms.
func Small(protein bool, seed int64) (*System, error) {
	spec := Spec{
		Name: "small", TotalAtoms: 645, Side: 18.6, Cutoff: 7.0, Mesh: 16,
		Model: ff.TIP3P, Seed: seed,
	}
	if protein {
		spec.Name = "small-protein"
		spec.ProteinAtoms = 45 // 4 residues + 1 cap
	}
	return Build(spec)
}
