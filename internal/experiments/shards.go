package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/fixp"
	"anton/internal/obs"
	"anton/internal/system"
)

// ShardPhaseTraffic is the measured traffic of one communication phase at
// one shard count: messages the transport actually carried, routed over
// the torus model for byte and hop accounting.
type ShardPhaseTraffic struct {
	Messages     int64 `json:"messages"`
	PayloadBytes int64 `json:"payload_bytes"`
	MaxHops      int   `json:"max_hops"`
	BusiestLinkB int64 `json:"busiest_link_bytes"`
}

// ShardScalingRow is one (shard count, pipeline) configuration's
// measurements in the shard-scaling experiment (the BENCH_shards.json
// record). Each shard count runs twice — streaming (overlap true) and
// barrier (overlap false) — so the overlap win is an A/B measurement,
// not an inference.
type ShardScalingRow struct {
	Shards       int     `json:"shards"`
	Overlap      bool    `json:"overlap"` // streaming pipeline (A) vs barrier pipeline (B)
	WallMs       float64 `json:"wall_ms"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	BitwiseMatch bool    `json:"bitwise_match"` // trajectory identical to monolithic reference

	// Pipeline accounting: total and per-shard-mean blocked-on-recv ns
	// (recorded on both pipelines — the barrier rows are the baseline),
	// compute-while-waiting ns, and the wire compression per traffic
	// class (streaming rows only; the barrier path sends uncompressed).
	BlockedNs        int64   `json:"blocked_ns"`
	BlockedNsShard   int64   `json:"blocked_ns_per_shard"`
	OverlapNs        int64   `json:"overlap_ns"`
	PosRawBytes      int64   `json:"pos_raw_bytes"`
	PosWireBytes     int64   `json:"pos_wire_bytes"`
	ForceRawBytes    int64   `json:"force_raw_bytes"`
	ForceWireBytes   int64   `json:"force_wire_bytes"`
	CompressionRatio float64 `json:"compression_ratio"` // raw/wire over both classes

	Evals     int64             `json:"force_evals"`
	Import    ShardPhaseTraffic `json:"import"`
	Export    ShardPhaseTraffic `json:"export"`
	Mesh      ShardPhaseTraffic `json:"mesh"`
	Migration ShardPhaseTraffic `json:"migration"`
}

// ShardScalingData is the structured result of the shard-scaling
// experiment: throughput and measured message traffic of the sharded
// virtual-node pipeline as the shard count grows, all on one host — the
// communication totals are what a real machine of that node count would
// have to carry for this system.
type ShardScalingData struct {
	Schema string `json:"schema"`
	System string `json:"system"`
	Atoms  int    `json:"atoms"`
	Steps  int    `json:"steps"`
	// StateDigest is the reference trajectory's final state digest
	// (%016x of core.Sim.StateDigest) — the identity every row's
	// bitwise_match column is judged against, and the hook for auditing
	// a regenerated record against a run ledger.
	StateDigest string            `json:"state_digest"`
	Rows        []ShardScalingRow `json:"rows"`
}

// ShardScaling runs the shard-scaling experiment and renders the
// plain-text report.
func ShardScaling(steps int) (string, error) {
	d, err := shardScalingData(steps)
	if err != nil {
		return "", err
	}
	return renderShardScaling(d), nil
}

// ShardScalingJSON runs the shard-scaling experiment and returns the
// structured record as indented JSON — the generator of the committed
// BENCH_shards.json artifact (make shards).
func ShardScalingJSON(steps int) ([]byte, error) {
	d, err := shardScalingData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func shardScalingData(steps int) (*ShardScalingData, error) {
	s, err := system.Small(true, 21)
	if err != nil {
		return nil, err
	}
	d := &ShardScalingData{
		Schema: obs.SchemaVersion,
		System: s.Name,
		Atoms:  s.NAtoms(),
		Steps:  steps,
	}

	// Monolithic reference trajectory for the bitwise-invariance column.
	refP, refV, refDigest, err := shardReference(steps)
	if err != nil {
		return nil, err
	}
	d.StateDigest = refDigest

	for _, shards := range []int{1, 8, 64, 512} {
		for _, overlap := range []bool{true, false} {
			sys, err := system.Small(true, 21)
			if err != nil {
				return nil, err
			}
			sh, err := core.NewSharded(sys, core.DefaultConfig(shards))
			if err != nil {
				return nil, err
			}
			sh.SetOverlap(overlap)
			rng := rand.New(rand.NewSource(33))
			sh.SetVelocities(system.InitVelocities(sys.Top, 300, rng))

			start := time.Now()
			sh.Step(steps)
			wall := time.Since(start)

			rep, err := sh.Comm()
			if err != nil {
				sh.Close()
				return nil, err
			}
			m := rep.Measured
			ts := sh.TransportStats()

			p, v := sh.Snapshot()
			match := true
			for i := range refP {
				if p[i] != refP[i] || v[i] != refV[i] {
					match = false
					break
				}
			}
			sh.Close()

			row := ShardScalingRow{
				Shards:         shards,
				Overlap:        overlap,
				WallMs:         float64(wall.Nanoseconds()) / 1e6,
				StepsPerSec:    float64(steps) / wall.Seconds(),
				BitwiseMatch:   match,
				BlockedNs:      ts.BlockedNs,
				BlockedNsShard: ts.BlockedNs / int64(shards),
				OverlapNs:      ts.OverlapNs,
				PosRawBytes:    ts.PosRawBytes,
				PosWireBytes:   ts.PosWireBytes,
				ForceRawBytes:  ts.ForceRawBytes,
				ForceWireBytes: ts.ForceWireBytes,
				Evals:          m.Evals,
				Import: ShardPhaseTraffic{m.ImportMsgs, m.Import.PayloadBytes,
					m.Import.MaxHops, m.Import.BusiestChannelBytes},
				Export: ShardPhaseTraffic{m.ExportMsgs, m.Export.PayloadBytes,
					m.Export.MaxHops, m.Export.BusiestChannelBytes},
				Mesh: ShardPhaseTraffic{m.MeshMsgs, m.Mesh.PayloadBytes,
					m.Mesh.MaxHops, m.Mesh.BusiestChannelBytes},
				Migration: ShardPhaseTraffic{m.MigrationMsgs, m.Migration.PayloadBytes,
					m.Migration.MaxHops, m.Migration.BusiestChannelBytes},
			}
			if wire := row.PosWireBytes + row.ForceWireBytes; wire > 0 {
				row.CompressionRatio = float64(row.PosRawBytes+row.ForceRawBytes) / float64(wire)
			}
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// shardReference runs the monolithic engine with the experiment's initial
// conditions and returns its final state and state digest.
func shardReference(steps int) ([]fixp.Vec3, []core.Vel3, string, error) {
	s, err := system.Small(true, 21)
	if err != nil {
		return nil, nil, "", err
	}
	e, err := core.NewEngine(s, core.DefaultConfig(1))
	if err != nil {
		return nil, nil, "", err
	}
	rng := rand.New(rand.NewSource(33))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	e.Step(steps)
	rp, rv := e.Snapshot()
	return rp, rv, fmt.Sprintf("%016x", e.StateDigest()), nil
}

// renderShardScaling formats the structured record as the experiment's
// plain-text report.
func renderShardScaling(d *ShardScalingData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded virtual-node scaling (%s, %d atoms, %d steps per run):\n",
		d.System, d.Atoms, d.Steps)
	fmt.Fprintf(&b, "%7s %8s %10s %9s %11s %7s %10s %10s %10s %10s  %s\n",
		"shards", "overlap", "steps/s", "wall ms", "blocked ms", "wire/raw",
		"import", "export", "mesh", "migration", "bitwise")
	for _, r := range d.Rows {
		match := "match"
		if !r.BitwiseMatch {
			match = "DIVERGED"
		}
		ov := "off"
		blocked := fmt.Sprintf("%.1f", float64(r.BlockedNs)/1e6)
		ratio := "-"
		if r.Overlap {
			ov = "on"
			if r.CompressionRatio > 0 {
				ratio = fmt.Sprintf("%.3f", 1/r.CompressionRatio)
			}
		}
		fmt.Fprintf(&b, "%7d %8s %10.2f %9.0f %11s %7s %10d %10d %10d %10d  %s\n",
			r.Shards, ov, r.StepsPerSec, r.WallMs, blocked, ratio,
			r.Import.Messages, r.Export.Messages, r.Mesh.Messages, r.Migration.Messages, match)
	}
	fmt.Fprintf(&b, "(message counts are measured over the whole run, %d force evaluations;\n", d.Rows[0].Evals)
	fmt.Fprintf(&b, " a single host runs every shard, so steps/s falls as goroutine and\n")
	fmt.Fprintf(&b, " message overhead grows — the traffic columns are the scaling payload.\n")
	fmt.Fprintf(&b, " overlap=on rows stream per-subbox dependency groups and compress the\n")
	fmt.Fprintf(&b, " wire: blocked ms is total recv-wait across shards, wire/raw is the\n")
	fmt.Fprintf(&b, " compressed fraction of the raw import+export payload)\n")
	return b.String()
}
