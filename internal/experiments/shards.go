package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/fixp"
	"anton/internal/obs"
	"anton/internal/system"
)

// ShardPhaseTraffic is the measured traffic of one communication phase at
// one shard count: messages the transport actually carried, routed over
// the torus model for byte and hop accounting.
type ShardPhaseTraffic struct {
	Messages     int64 `json:"messages"`
	PayloadBytes int64 `json:"payload_bytes"`
	MaxHops      int   `json:"max_hops"`
	BusiestLinkB int64 `json:"busiest_link_bytes"`
}

// ShardScalingRow is one shard count's measurements in the shard-scaling
// experiment (the BENCH_shards.json record).
type ShardScalingRow struct {
	Shards       int     `json:"shards"`
	WallMs       float64 `json:"wall_ms"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	BitwiseMatch bool    `json:"bitwise_match"` // trajectory identical to monolithic reference

	Evals     int64             `json:"force_evals"`
	Import    ShardPhaseTraffic `json:"import"`
	Export    ShardPhaseTraffic `json:"export"`
	Mesh      ShardPhaseTraffic `json:"mesh"`
	Migration ShardPhaseTraffic `json:"migration"`
}

// ShardScalingData is the structured result of the shard-scaling
// experiment: throughput and measured message traffic of the sharded
// virtual-node pipeline as the shard count grows, all on one host — the
// communication totals are what a real machine of that node count would
// have to carry for this system.
type ShardScalingData struct {
	Schema string `json:"schema"`
	System string `json:"system"`
	Atoms  int    `json:"atoms"`
	Steps  int    `json:"steps"`
	// StateDigest is the reference trajectory's final state digest
	// (%016x of core.Sim.StateDigest) — the identity every row's
	// bitwise_match column is judged against, and the hook for auditing
	// a regenerated record against a run ledger.
	StateDigest string            `json:"state_digest"`
	Rows        []ShardScalingRow `json:"rows"`
}

// ShardScaling runs the shard-scaling experiment and renders the
// plain-text report.
func ShardScaling(steps int) (string, error) {
	d, err := shardScalingData(steps)
	if err != nil {
		return "", err
	}
	return renderShardScaling(d), nil
}

// ShardScalingJSON runs the shard-scaling experiment and returns the
// structured record as indented JSON — the generator of the committed
// BENCH_shards.json artifact (make shards).
func ShardScalingJSON(steps int) ([]byte, error) {
	d, err := shardScalingData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func shardScalingData(steps int) (*ShardScalingData, error) {
	s, err := system.Small(true, 21)
	if err != nil {
		return nil, err
	}
	d := &ShardScalingData{
		Schema: obs.SchemaVersion,
		System: s.Name,
		Atoms:  s.NAtoms(),
		Steps:  steps,
	}

	// Monolithic reference trajectory for the bitwise-invariance column.
	refP, refV, refDigest, err := shardReference(steps)
	if err != nil {
		return nil, err
	}
	d.StateDigest = refDigest

	for _, shards := range []int{1, 8, 64, 512} {
		sys, err := system.Small(true, 21)
		if err != nil {
			return nil, err
		}
		sh, err := core.NewSharded(sys, core.DefaultConfig(shards))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(33))
		sh.SetVelocities(system.InitVelocities(sys.Top, 300, rng))

		start := time.Now()
		sh.Step(steps)
		wall := time.Since(start)

		rep, err := sh.Comm()
		if err != nil {
			sh.Close()
			return nil, err
		}
		m := rep.Measured

		p, v := sh.Snapshot()
		match := true
		for i := range refP {
			if p[i] != refP[i] || v[i] != refV[i] {
				match = false
				break
			}
		}
		sh.Close()

		d.Rows = append(d.Rows, ShardScalingRow{
			Shards:       shards,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			StepsPerSec:  float64(steps) / wall.Seconds(),
			BitwiseMatch: match,
			Evals:        m.Evals,
			Import: ShardPhaseTraffic{m.ImportMsgs, m.Import.PayloadBytes,
				m.Import.MaxHops, m.Import.BusiestChannelBytes},
			Export: ShardPhaseTraffic{m.ExportMsgs, m.Export.PayloadBytes,
				m.Export.MaxHops, m.Export.BusiestChannelBytes},
			Mesh: ShardPhaseTraffic{m.MeshMsgs, m.Mesh.PayloadBytes,
				m.Mesh.MaxHops, m.Mesh.BusiestChannelBytes},
			Migration: ShardPhaseTraffic{m.MigrationMsgs, m.Migration.PayloadBytes,
				m.Migration.MaxHops, m.Migration.BusiestChannelBytes},
		})
	}
	return d, nil
}

// shardReference runs the monolithic engine with the experiment's initial
// conditions and returns its final state and state digest.
func shardReference(steps int) ([]fixp.Vec3, []core.Vel3, string, error) {
	s, err := system.Small(true, 21)
	if err != nil {
		return nil, nil, "", err
	}
	e, err := core.NewEngine(s, core.DefaultConfig(1))
	if err != nil {
		return nil, nil, "", err
	}
	rng := rand.New(rand.NewSource(33))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	e.Step(steps)
	rp, rv := e.Snapshot()
	return rp, rv, fmt.Sprintf("%016x", e.StateDigest()), nil
}

// renderShardScaling formats the structured record as the experiment's
// plain-text report.
func renderShardScaling(d *ShardScalingData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded virtual-node scaling (%s, %d atoms, %d steps per run):\n",
		d.System, d.Atoms, d.Steps)
	fmt.Fprintf(&b, "%7s %10s %9s %10s %10s %10s %10s  %s\n",
		"shards", "steps/s", "wall ms", "import", "export", "mesh", "migration", "bitwise")
	for _, r := range d.Rows {
		match := "match"
		if !r.BitwiseMatch {
			match = "DIVERGED"
		}
		fmt.Fprintf(&b, "%7d %10.2f %9.0f %10d %10d %10d %10d  %s\n",
			r.Shards, r.StepsPerSec, r.WallMs,
			r.Import.Messages, r.Export.Messages, r.Mesh.Messages, r.Migration.Messages, match)
	}
	fmt.Fprintf(&b, "(message counts are measured over the whole run, %d force evaluations;\n", d.Rows[0].Evals)
	fmt.Fprintf(&b, " a single host runs every shard, so steps/s falls as goroutine and\n")
	fmt.Fprintf(&b, " message overhead grows — the traffic columns are the scaling payload)\n")
	return b.String()
}
