package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"anton/internal/faults"
	"anton/internal/ledger"
	"anton/internal/obs"
	"anton/internal/service"
)

// ServiceChaosJob is one job's outcome in the service-chaos campaign:
// what the hostile storage plane did to it, and the proof that survival
// cost nothing — its final digest must be bitwise equal to the digest of
// the same spec run with no daemon, no checkpoints and no faults.
type ServiceChaosJob struct {
	ID     string `json:"id"`
	Seed   int64  `json:"seed"`
	Shards int    `json:"shards"`
	State  string `json:"state"`
	Step   int    `json:"step"`

	Digest       string `json:"digest"`
	Reference    string `json:"reference_digest"`
	BitwiseMatch bool   `json:"bitwise_match"`

	Attempts int `json:"attempts"`
	Resumes  int `json:"resumes"`

	LedgerVerified bool   `json:"ledger_verified"`
	LedgerRecords  uint64 `json:"ledger_records"`
	LedgerCommits  uint64 `json:"ledger_commits"`
}

// ServiceChaosData is the structured record of the service-chaos
// experiment (the BENCH_servicechaos.json artifact): a seeded campaign
// of storage faults — ENOSPC, EIO, torn writes, stalls, and scheduled
// whole-process crashes at rotating persist points — run against antond
// jobs, with the daemon killed and rebooted after every crash until all
// jobs converge.
type ServiceChaosData struct {
	Schema string `json:"schema"`
	System string `json:"system"`
	Steps  int    `json:"steps"`
	Spec   string `json:"fs_spec"`

	Jobs []ServiceChaosJob `json:"jobs"`

	// Restarts counts kill/reboot/new-daemon cycles forced by scheduled
	// crashes; WallMs is the whole campaign including them.
	Restarts int     `json:"restarts"`
	WallMs   float64 `json:"wall_ms"`

	// Supervision counters, accumulated across daemon generations.
	PersistRetries int64 `json:"persist_retries"`
	JobRequeues    int64 `json:"job_requeues"`
	Quarantines    int64 `json:"quarantines"`
	StorageFaults  int64 `json:"storage_faults"`

	// Injected is the fault plane's own per-class ledger — the ground
	// truth that the campaign actually fired every fault class.
	Injected faults.FSCounts `json:"injected"`

	// A healthy campaign ends with an idle pool: nothing wedged on a
	// fault path, nothing silently stuck in the queue.
	WedgedWorkers int `json:"wedged_workers"`
	QueueDepth    int `json:"queue_depth"`
}

// serviceChaosFSSpec is the campaign's standard storage-fault mix:
// every recoverable fault class at rates that hit most persist
// boundaries, plus six scheduled crashes so the rotating crash-point
// cursor covers all five persist points (before-write, mid-write,
// after-write, after-sync, after-rename) at least once. Fsync-drop is
// deliberately absent: dropped syncs are recoverable only by
// quarantine, not by replay, and this experiment's acceptance bar is
// bitwise-identical convergence.
const serviceChaosFSSpec = "seed=11,enospc=0.05,eio=0.03,torn=0.05,stall=0.02,maxstall=2ms,crashes=6,horizon=48"

// ServiceChaos runs the service-chaos campaign and renders the
// plain-text report.
func ServiceChaos(steps int) (string, error) {
	d, err := serviceChaosData(steps)
	if err != nil {
		return "", err
	}
	return renderServiceChaos(d), nil
}

// ServiceChaosJSON runs the service-chaos campaign and returns the
// structured record as indented JSON — the generator of the committed
// BENCH_servicechaos.json artifact (make servicechaos).
func ServiceChaosJSON(steps int) ([]byte, error) {
	d, err := serviceChaosData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func serviceChaosData(steps int) (*ServiceChaosData, error) {
	fspec, err := faults.ParseFSSpec(serviceChaosFSSpec)
	if err != nil {
		return nil, err
	}
	fs := faults.NewFS(fspec)

	dir, err := os.MkdirTemp("", "servicechaos-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Two jobs, eight shards each: checkpoints, ledger appends and
	// status writes from two workers interleave on the faulty disk, so
	// persist-order bugs that a single job would mask get a chance to
	// corrupt a neighbour.
	specs := []service.JobSpec{
		{System: "small", Steps: steps, CheckpointEvery: 10, Seed: 5, Shards: 8,
			IdempotencyKey: "servicechaos-seed5"},
		{System: "small", Steps: steps, CheckpointEvery: 10, Seed: 9, Shards: 8,
			IdempotencyKey: "servicechaos-seed9"},
	}

	quiet := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	mk := func() (*service.Daemon, error) {
		return service.New(service.Config{
			StateDir:   dir,
			Workers:    2,
			StorageFS:  fs,
			RetryBase:  time.Millisecond,
			JobRetries: 10,
			Logger:     quiet,
		})
	}

	d := &ServiceChaosData{
		Schema: obs.SchemaVersion,
		System: "small",
		Steps:  steps,
		Spec:   serviceChaosFSSpec,
	}

	// A scheduled crash can fire during startup recovery itself (the
	// recovery scan persists queued flips). That is still just a crash:
	// reboot the disk and boot again, like init restarting a daemon that
	// died coming up.
	boot := func() (*service.Daemon, error) {
		for {
			dm, err := mk()
			if err == nil {
				dm.Start()
				return dm, nil
			}
			if !faults.IsCrash(err) {
				return nil, err
			}
			fs.Reboot()
		}
	}

	dm, err := boot()
	if err != nil {
		return nil, err
	}

	// Submission itself runs against the hostile disk (the store
	// persists the new job record), so a submit can fail with an
	// injected fault or land mid-crash. The client contract is the cure:
	// retry with an idempotency key, and a duplicate lands on the
	// original job — across daemon restarts too, since the key index is
	// rebuilt from the scan.
	ids := make([]string, len(specs))
	ensureSubmitted := func() error {
		for i := range specs {
			if ids[i] != "" {
				continue
			}
			js, _, err := dm.Submit(specs[i])
			if err != nil {
				if faults.IsInjected(err) || faults.IsCrash(err) {
					return nil // transient or crashed mid-submit: retry next tick
				}
				return err
			}
			ids[i] = js.ID
		}
		return nil
	}

	// Stats counters die with each daemon generation; fold them into the
	// record before every kill and once after convergence.
	harvest := func(s *obs.ServiceStats) {
		d.PersistRetries += s.PersistRetries.Load()
		d.JobRequeues += s.JobRequeues.Load()
		d.Quarantines += s.Quarantines.Load()
		d.StorageFaults += s.StorageFaults.Load()
	}

	start := time.Now()
	deadline := start.Add(10 * time.Minute)
	for {
		if time.Now().After(deadline) {
			dm.Kill()
			return nil, fmt.Errorf("experiments: service chaos campaign did not converge after %d restarts", d.Restarts)
		}
		if dm.StorageCrashed() {
			// The fault plane fired a scheduled crash mid-persist: every
			// subsequent storage op fails until reboot, exactly like a
			// machine losing power. Kill the daemon, reboot the "disk"
			// (dirty pages beyond the durable prefix are discarded), and
			// bring up a fresh daemon over the surviving state.
			harvest(dm.Stats())
			dm.Kill()
			fs.Reboot()
			d.Restarts++
			dm, err = boot()
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := ensureSubmitted(); err != nil {
			dm.Kill()
			return nil, err
		}
		allDone := true
		for _, id := range ids {
			if id == "" {
				allDone = false
				break
			}
			js, ok := dm.Job(id)
			if !ok || !js.State.Terminal() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	harvest(dm.Stats())
	d.Injected = fs.Counts()
	d.WedgedWorkers = dm.BusyWorkers()
	d.QueueDepth = dm.QueueDepth()
	defer dm.Kill()

	for i, id := range ids {
		js, _ := dm.Job(id)
		ref, err := serviceChaosReference(specs[i])
		if err != nil {
			return nil, err
		}
		row := ServiceChaosJob{
			ID:           js.ID,
			Seed:         specs[i].Seed,
			Shards:       specs[i].Shards,
			State:        string(js.State),
			Step:         js.Step,
			Digest:       js.Digest,
			Reference:    ref,
			BitwiseMatch: js.Digest == ref,
			Attempts:     js.Attempts,
			Resumes:      js.Resumes,
		}
		if rep, err := ledger.VerifyFile(dm.LedgerPath(id)); err == nil {
			row.LedgerVerified = true
			row.LedgerRecords = rep.Records
			row.LedgerCommits = rep.Commits
		}
		d.Jobs = append(d.Jobs, row)

		if js.State != service.StateDone {
			return nil, fmt.Errorf("experiments: service chaos job %s ended %s (err %q), want done", id, js.State, js.Error)
		}
		if !row.BitwiseMatch {
			return nil, fmt.Errorf("experiments: service chaos job %s digest %s != reference %s after %d restarts",
				id, js.Digest, ref, d.Restarts)
		}
		if !row.LedgerVerified {
			return nil, fmt.Errorf("experiments: service chaos job %s ledger fails verification", id)
		}
	}
	if d.WedgedWorkers != 0 || d.QueueDepth != 0 {
		return nil, fmt.Errorf("experiments: service chaos left a wedged pool: busy=%d depth=%d",
			d.WedgedWorkers, d.QueueDepth)
	}
	return d, nil
}

// serviceChaosReference runs the spec's trajectory directly — no
// daemon, no checkpoints, no faults — and returns the final-step
// digest: the identity every surviving job must reproduce bitwise.
func serviceChaosReference(spec service.JobSpec) (string, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	sim, _, sh, err := service.BuildSim(spec)
	if err != nil {
		return "", err
	}
	if sh != nil {
		defer sh.Close()
	}
	sim.Step(spec.Steps)
	return fmt.Sprintf("%016x", sim.StateDigest()), nil
}

// renderServiceChaos formats the structured record as the experiment's
// plain-text report.
func renderServiceChaos(d *ServiceChaosData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Service chaos campaign (%s, %d steps per job, %d jobs):\n",
		d.System, d.Steps, len(d.Jobs))
	fmt.Fprintf(&b, "storage faults: %s\n", d.Spec)
	fmt.Fprintf(&b, "%-12s %6s %6s %8s %8s %7s %7s %7s  %s\n",
		"job", "shards", "state", "attempts", "resumes", "ledger", "commits", "records", "bitwise")
	for _, j := range d.Jobs {
		match := "match"
		if !j.BitwiseMatch {
			match = "DIVERGED"
		}
		lv := "ok"
		if !j.LedgerVerified {
			lv = "FAIL"
		}
		fmt.Fprintf(&b, "%-12s %6d %6s %8d %8d %7s %7d %7d  %s\n",
			j.ID, j.Shards, j.State, j.Attempts, j.Resumes, lv, j.LedgerCommits, j.LedgerRecords, match)
	}
	fmt.Fprintf(&b, "campaign: %d restarts, %.0f ms wall; %d persist retries, %d requeues, %d quarantines, %d storage faults surfaced\n",
		d.Restarts, d.WallMs, d.PersistRetries, d.JobRequeues, d.Quarantines, d.StorageFaults)
	fmt.Fprintf(&b, "injected: enospc=%d eio=%d torn=%d stalls=%d crashes=%d fired (writes=%d reads=%d)\n",
		d.Injected.Enospc, d.Injected.Eio, d.Injected.Torn, d.Injected.Stalls,
		d.Injected.CrashesFired, d.Injected.Writes, d.Injected.Reads)
	fmt.Fprintf(&b, "pool after campaign: busy=%d queued=%d\n", d.WedgedWorkers, d.QueueDepth)
	return b.String()
}
