package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"anton/internal/analysis"
	"anton/internal/core"
	"anton/internal/ewald"
	"anton/internal/ff"
	"anton/internal/htis"
	"anton/internal/machine"
	"anton/internal/nt"
	"anton/internal/ppip"
	"anton/internal/system"
	"anton/internal/vec"
)

// Ablations probe the design choices the paper's co-design argument rests
// on, by switching each one off or varying it.

// AblationMantissa varies the PPIP table mantissa width and reports the
// erfc force-kernel accuracy — why the hardware spends 19-22 bits
// (Figure 4a) and not fewer.
func AblationMantissa() (string, error) {
	sigma := ewald.SigmaForCutoff(13, 1e-6)
	f := ppip.ErfcForceFunc(sigma, 13, 1.0)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: PPIP mantissa width vs erfc force-kernel accuracy (13-Å cutoff)\n")
	fmt.Fprintf(&b, "%-8s %16s\n", "bits", "max rel err (2.2-12 Å)")
	prev := math.Inf(1)
	for _, bits := range []uint{10, 14, 18, 22, 26} {
		tab, err := ppip.Build(f, ppip.PaperScheme, bits)
		if err != nil {
			return "", err
		}
		worst := 0.0
		for i := 0; i < 8000; i++ {
			r := 2.2 + (12.0-2.2)*float64(i)/8000
			x := (r / 13) * (r / 13)
			rel := math.Abs(tab.Evaluate(x)-f(x)) / (math.Abs(f(x)) + 1e-30)
			if rel > worst {
				worst = rel
			}
		}
		fmt.Fprintf(&b, "%-8d %16.2e\n", bits, worst)
		if worst > prev*1.5 {
			return "", fmt.Errorf("accuracy did not improve with width: %g bits worse", float64(bits))
		}
		prev = worst
	}
	fmt.Fprintf(&b, "(the fit error floor is reached near the hardware's 22 bits)\n")
	return b.String(), nil
}

// AblationSubbox disables/varies subbox division and reports match
// efficiency and the implied PPIP utilization — Table 3's reason to
// exist.
func AblationSubbox() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: subbox division on the 512-node DHFR decomposition\n")
	fmt.Fprintf(&b, "(box side %.2f Å, 13-Å cutoff; PPIPs stay fed while ME >= %.0f%%)\n",
		62.2/8, htis.DefaultHardware.MinMatchEfficiency()*100)
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "subdiv", "match eff", "PPIP util")
	rng := rand.New(rand.NewSource(5))
	prevUtil := 0.0
	for _, subdiv := range []int{1, 2, 4} {
		cfg := nt.Config{BoxSide: 62.2 / 8, Cutoff: 13, Subdiv: subdiv}
		me := nt.MatchEfficiency(cfg, rng, 200000)
		needed := nt.NecessaryPairsPerNode(cfg, 0.098)
		considered := needed / me
		tp := htis.DefaultHardware.Throughput(considered, needed)
		fmt.Fprintf(&b, "%-8d %11.0f%% %13.0f%%\n", subdiv, me*100, tp.Utilization*100)
		if tp.Utilization+1e-9 < prevUtil {
			return "", fmt.Errorf("utilization fell with subdivision")
		}
		prevUtil = tp.Utilization
	}
	return b.String(), nil
}

// AblationMTS varies the multiple-time-step interval and measures NVE
// energy drift on an equilibrated ionic fluid — the cost of evaluating
// long-range forces less often (§3.1: "long-range interactions are
// typically evaluated only every two or three time steps").
func AblationMTS(steps int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: MTS interval vs NVE drift and modelled DHFR rate\n")
	fmt.Fprintf(&b, "%-10s %22s %12s\n", "interval", "drift (kcal/mol/DoF/us)", "us/day")
	spec, _ := system.SpecFor("DHFR")
	m, _ := machine.New(512)
	for _, k := range []int{1, 2, 4} {
		s, err := system.IonicFluid(60, 16.0, 6.5, 16, 91)
		if err != nil {
			return "", err
		}
		cfg := core.DefaultConfig(8)
		cfg.TauT = 0
		cfg.Dt = 2.0
		cfg.MTSInterval = k
		eng, err := core.NewEngine(s, cfg)
		if err != nil {
			return "", err
		}
		rng := rand.New(rand.NewSource(35))
		eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		eng.Step(40) // settle
		var times, energies []float64
		for done := 0; done < steps; done += 4 {
			eng.Step(4)
			times = append(times, float64(eng.StepCount())*cfg.Dt)
			energies = append(energies, eng.TotalEnergy())
		}
		drift, err := analysis.EnergyDrift(times, energies, s.Top.DegreesOfFreedom())
		if err != nil {
			return "", err
		}
		w := machine.WorkloadFromSpec(spec)
		w.MTSInterval = k
		rate := machine.DefaultModel.Estimate(m, w).RatePerDay
		fmt.Fprintf(&b, "%-10d %22.3f %12.1f\n", k, drift, rate)
	}
	fmt.Fprintf(&b, "(larger intervals buy rate at the cost of integration accuracy)\n")
	return b.String(), nil
}

// AblationGSEvsSPME compares the two mesh methods' accuracy and their
// hardware-relevant workload shapes — why GSE's radially symmetric
// kernels matter to Anton even though SPME is at least as accurate.
func AblationGSEvsSPME() (string, error) {
	box := vec.Cube(20)
	rng := rand.New(rand.NewSource(77))
	var atoms []ff.Atom
	var r []vec.V3
	for i := 0; i < 24; i++ {
		q := 0.5 + rng.Float64()
		if i%2 == 1 {
			q = -q
		}
		atoms = append(atoms, ff.Atom{Charge: q})
		r = append(r, vec.V3{X: rng.Float64() * 20, Y: rng.Float64() * 20, Z: rng.Float64() * 20})
	}
	var tot float64
	for _, a := range atoms {
		tot += a.Charge
	}
	atoms[len(atoms)-1].Charge -= tot

	s := ewald.Split{Sigma: 1.5, Cutoff: 9}
	exactE := ewald.ExactKSpace(s, atoms, box, r, nil, 14)

	gse, err := ewald.NewGSE(s, box, 32, 32, 32, 4.5)
	if err != nil {
		return "", err
	}
	spme, err := ewald.NewSPME(s, box, 32, 32, 32, 6)
	if err != nil {
		return "", err
	}
	gseE := gse.LongRange(atoms, r, nil)
	spmeE := spme.LongRange(atoms, r, nil)

	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: GSE vs SPME on a 32^3 mesh (exact k-space reference)\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %22s\n", "method", "energy", "rel err", "kernel form")
	fmt.Fprintf(&b, "%-8s %14.4f %14s %22s\n", "exact", exactE, "-", "-")
	fmt.Fprintf(&b, "%-8s %14.4f %14.2e %22s\n", "GSE", gseE, math.Abs(gseE-exactE)/math.Abs(exactE), "radial (PPIP-able)")
	fmt.Fprintf(&b, "%-8s %14.4f %14.2e %22s\n", "SPME", spmeE, math.Abs(spmeE-exactE)/math.Abs(exactE), "B-spline (separable)")
	fmt.Fprintf(&b, "\nmesh workload per charged atom: GSE %.0f points (distance-limited sphere,\n", gse.MeshPointsPerAtom())
	fmt.Fprintf(&b, "runs on the HTIS); SPME %d points (6x6x6 stencil, needs gather/scatter on\n", 6*6*6)
	fmt.Fprintf(&b, "programmable cores) — GSE trades raw point count for hardware placement (§3.1)\n")
	if math.Abs(gseE-exactE)/math.Abs(exactE) > 5e-3 {
		return "", fmt.Errorf("GSE error too large")
	}
	return b.String(), nil
}

// AblationNTvsHalfShell compares the parallelization methods' import
// costs across parallelism levels, including an estimate of import time
// on the torus channels — Figure 3's argument quantified.
func AblationNTvsHalfShell() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: NT method vs traditional half-shell import, 13-Å cutoff\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %8s\n", "nodes", "box (Å)", "NT atoms", "HS atoms", "NT/HS")
	const side = 62.2 // DHFR box
	const rho = 0.098
	for _, nodes := range []int{64, 512, 4096} {
		boxSide := side / math.Cbrt(float64(nodes))
		c := nt.Config{BoxSide: boxSide, Cutoff: 13}
		ntAtoms := c.ImportVolume() * rho
		hsAtoms := c.HalfShellImportVolume() * rho
		fmt.Fprintf(&b, "%-10d %10.2f %12.0f %12.0f %8.2f\n",
			nodes, boxSide, ntAtoms, hsAtoms, ntAtoms/hsAtoms)
		if nodes >= 512 && ntAtoms >= hsAtoms {
			return "", fmt.Errorf("NT import not smaller at %d nodes", nodes)
		}
	}
	fmt.Fprintf(&b, "(the NT advantage grows asymptotically with parallelism — §3.2.1)\n")
	return b.String(), nil
}
