package experiments

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BPTI", "1031", "us/day"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Range-limited", "FFT", "slowdown", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable2Measured(t *testing.T) {
	out, err := Table2Measured(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Range-limited") {
		t.Errorf("measured profile malformed:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	out, err := Table3(50000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "match efficiency") {
		t.Errorf("Table3 malformed:\n%s", out)
	}
}

func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs gpW dynamics")
	}
	out, rows, err := Table4(true, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	// gpW row carries measurements.
	if rows[0].Name != "gpW" || rows[0].NumericForceErr == 0 {
		t.Errorf("gpW measurements missing: %+v", rows[0])
	}
	// The numerical force error must be far below the paper's 1e-3
	// acceptability threshold.
	if rows[0].NumericForceErr > 1e-3 {
		t.Errorf("numerical force error %g too large", rows[0].NumericForceErr)
	}
	// Total error should be >= numerical error (it includes parameter
	// truncation too).
	if rows[0].TotalForceErr < rows[0].NumericForceErr {
		t.Errorf("total %g < numerical %g", rows[0].TotalForceErr, rows[0].NumericForceErr)
	}
	if !strings.Contains(out, "gpW") {
		t.Error("report missing gpW")
	}
}

func TestFig3(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "half-shell") {
		t.Errorf("Fig3 malformed:\n%s", out)
	}
}

func TestFig5(t *testing.T) {
	out, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gpW", "T7Lig", "water-only"} {
		if !strings.Contains(out, name) {
			t.Errorf("Fig5 missing %q", name)
		}
	}
}

func TestFig7Short(t *testing.T) {
	if testing.Short() {
		t.Skip("folding trace")
	}
	out, err := Fig7(30000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "transitions") {
		t.Errorf("Fig7 malformed:\n%s", out)
	}
}

func TestPropertiesReport(t *testing.T) {
	out, err := Properties(8)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"determinism", "parallel invariance", "reversibility"} {
		if !strings.Contains(out, want) {
			t.Errorf("Properties missing %q", want)
		}
	}
	if strings.Contains(out, "= false") {
		t.Errorf("a property failed:\n%s", out)
	}
}

func TestPartitionReport(t *testing.T) {
	out, err := Partition()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"512 nodes", "cluster", "Anton-512 over cluster-512"} {
		if !strings.Contains(out, want) {
			t.Errorf("Partition missing %q", want)
		}
	}
}

func TestAblationMantissa(t *testing.T) {
	out, err := AblationMantissa()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "22") {
		t.Error("missing 22-bit row")
	}
}

func TestAblationSubbox(t *testing.T) {
	out, err := AblationSubbox()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "PPIP util") {
		t.Error("malformed")
	}
}

func TestAblationMTS(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamics")
	}
	out, err := AblationMTS(200)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "interval") {
		t.Error("malformed")
	}
}

func TestAblationGSEvsSPME(t *testing.T) {
	out, err := AblationGSEvsSPME()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"GSE", "SPME", "exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestAblationNTvsHalfShell(t *testing.T) {
	out, err := AblationNTvsHalfShell()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "NT/HS") {
		t.Error("malformed")
	}
}

func TestWaterStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamics")
	}
	out, err := WaterStructure(160, 8)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "first peak") {
		t.Error("malformed")
	}
	t.Logf("\n%s", out)
}

func TestFig5Curve(t *testing.T) {
	out, err := Fig5Curve()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"5000", "120000", "plateau"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5Curve missing %q", want)
		}
	}
}

func TestBPTIExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("17k-atom dynamics")
	}
	out, err := BPTI(4)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"17758", "TIP4P-Ew", "modelled 512-node"} {
		if !strings.Contains(out, want) {
			t.Errorf("BPTI report missing %q", want)
		}
	}
}

func TestProfileMeasured(t *testing.T) {
	out, err := ProfileMeasured(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"range-limited", "FFT", "mesh spread+interp", "bonded",
		"match efficiency", "migration-interval drift", "residency slack",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile report missing %q:\n%s", want, out)
		}
	}
}
