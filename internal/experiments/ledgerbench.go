package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/ledger"
	"anton/internal/obs"
	"anton/internal/system"
)

// LedgerBenchRow is one provenance mode's measurements in the
// ledger-overhead experiment: the same DHFR trajectory stepped with no
// ledger (baseline), a per-record-committed ledger (direct, Batch=1),
// and a Merkle-batched ledger (Batch=DefaultBatch).
type LedgerBenchRow struct {
	Mode        string  `json:"mode"`  // baseline | direct | batched
	Batch       int     `json:"batch"` // 0 = no ledger attached
	WallMs      float64 `json:"wall_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// OverheadPct is this mode's wall-time overhead versus baseline —
	// the headline number the Merkle batching must keep under the
	// acceptance bar.
	OverheadPct float64 `json:"overhead_pct"`
	// BitwiseMatch verifies the zero-perturbation contract: the final
	// state digest equals the baseline run's.
	BitwiseMatch bool  `json:"bitwise_match"`
	Records      int64 `json:"records"`
	Commits      int64 `json:"commits"`
	LedgerBytes  int64 `json:"ledger_bytes"`
}

// LedgerBenchData is the structured record of the ledger-overhead
// experiment (the BENCH_ledger.json artifact): the cost of hash-chained
// provenance on the DHFR hot path, with Merkle batching amortizing the
// commit fsyncs that make direct mode expensive.
type LedgerBenchData struct {
	Schema  string `json:"schema"`
	System  string `json:"system"`
	Atoms   int    `json:"atoms"`
	Steps   int    `json:"steps"`
	Cadence int    `json:"cadence"` // digest record every this many steps
	Reps    int    `json:"reps"`    // best-of-N wall times per mode
	// StateDigest is the baseline run's final state digest — the
	// identity every ledgered row's bitwise_match is judged against.
	StateDigest string           `json:"state_digest"`
	Note        string           `json:"note"`
	Rows        []LedgerBenchRow `json:"rows"`
}

// ledgerBenchCadence keeps the digest stream dense enough that the
// overhead being measured is real (several records per commit in
// batched mode over a full run) without dominating short CI runs.
const ledgerBenchCadence = 2

// LedgerBench runs the ledger-overhead experiment and renders the
// plain-text report.
func LedgerBench(steps int) (string, error) {
	d, err := ledgerBenchData(steps)
	if err != nil {
		return "", err
	}
	return renderLedgerBench(d), nil
}

// LedgerBenchJSON runs the ledger-overhead experiment and returns the
// structured record as indented JSON — the generator of the committed
// BENCH_ledger.json artifact (make bench-ledger).
func LedgerBenchJSON(steps int) ([]byte, error) {
	d, err := ledgerBenchData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func ledgerBenchData(steps int) (*LedgerBenchData, error) {
	s, err := system.ByName("DHFR")
	if err != nil {
		return nil, err
	}
	reps := 3
	if steps <= 8 {
		reps = 1 // keep package tests fast; the committed artifact uses 3
	}
	d := &LedgerBenchData{
		Schema:  obs.SchemaVersion,
		System:  s.Name,
		Atoms:   s.NAtoms(),
		Steps:   steps,
		Cadence: ledgerBenchCadence,
		Reps:    reps,
		Note: "wall times are best-of-reps on one host; direct mode commits " +
			"and fsyncs every record, batched mode seals a Merkle root every " +
			fmt.Sprintf("%d", ledger.DefaultBatch) + " records — the overhead " +
			"column is what provenance costs the hot path",
	}

	dir, err := os.MkdirTemp("", "ledgerbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	modes := []struct {
		name  string
		batch int // 0 = no ledger
	}{
		{"baseline", 0},
		{"direct", 1},
		{"batched", ledger.DefaultBatch},
	}
	// Reps are interleaved round-robin across modes: a one-host
	// measurement drifts over minutes, and running each mode's reps
	// back-to-back would book that drift as mode overhead. Round-robin
	// puts every mode in every time window; best-of then discards the
	// slow windows for each mode independently.
	best := make([]time.Duration, len(modes))
	digest := make([]string, len(modes))
	stats := make([]ledger.Stats, len(modes))
	for rep := 0; rep < reps; rep++ {
		for i, m := range modes {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.ledger", m.name, rep))
			wall, dg, st, err := ledgerBenchRun(s, steps, m.batch, path)
			if err != nil {
				return nil, err
			}
			if rep == 0 || wall < best[i] {
				best[i] = wall
			}
			digest[i], stats[i] = dg, st
			if m.batch > 0 {
				if _, err := ledger.VerifyFile(path); err != nil {
					return nil, fmt.Errorf("experiments: %s-mode ledger failed verification: %w", m.name, err)
				}
			}
			// Each run rebuilds the system so force tables and neighbor
			// structures never warm across modes.
			if s, err = system.ByName("DHFR"); err != nil {
				return nil, err
			}
		}
	}
	d.StateDigest = digest[0]
	for i, m := range modes {
		row := LedgerBenchRow{
			Mode:         m.name,
			Batch:        m.batch,
			WallMs:       float64(best[i].Nanoseconds()) / 1e6,
			StepsPerSec:  float64(steps) / best[i].Seconds(),
			BitwiseMatch: digest[i] == d.StateDigest,
			Records:      stats[i].Records,
			Commits:      stats[i].Commits,
			LedgerBytes:  stats[i].Bytes,
		}
		if i > 0 {
			row.OverheadPct = 100 * (row.WallMs - d.Rows[0].WallMs) / d.Rows[0].WallMs
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// ledgerBenchRun steps one DHFR configuration, with a ledger tap
// attached when batch > 0, and returns the wall time, final state
// digest and ledger output stats.
func ledgerBenchRun(s *system.System, steps, batch int, path string) (time.Duration, string, ledger.Stats, error) {
	e, err := core.NewEngine(s, core.DefaultConfig(512))
	if err != nil {
		return 0, "", ledger.Stats{}, err
	}
	rng := rand.New(rand.NewSource(7))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))

	var lw *ledger.Writer
	if batch > 0 {
		lw, err = ledger.Create(path, ledger.Options{Batch: batch})
		if err != nil {
			return 0, "", ledger.Stats{}, err
		}
		if err := lw.AppendGenesis(ledger.Genesis{
			Fingerprint: e.FingerprintHex(),
			System:      s.Name,
			Atoms:       s.NAtoms(),
		}); err != nil {
			return 0, "", ledger.Stats{}, err
		}
		core.AttachLedger(e, lw, ledgerBenchCadence)
	}

	start := time.Now()
	e.Step(steps)
	wall := time.Since(start)

	var st ledger.Stats
	if lw != nil {
		if err := lw.Close(); err != nil {
			return 0, "", ledger.Stats{}, err
		}
		st = lw.Stats()
	}
	return wall, fmt.Sprintf("%016x", e.StateDigest()), st, nil
}

// renderLedgerBench formats the structured record as the experiment's
// plain-text report.
func renderLedgerBench(d *LedgerBenchData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run-ledger overhead (%s, %d atoms, %d steps, digest every %d steps, best of %d):\n",
		d.System, d.Atoms, d.Steps, d.Cadence, d.Reps)
	fmt.Fprintf(&b, "%9s %6s %9s %9s %9s %8s %8s %9s  %s\n",
		"mode", "batch", "wall ms", "steps/s", "overhead", "records", "commits", "bytes", "bitwise")
	for _, r := range d.Rows {
		match := "match"
		if !r.BitwiseMatch {
			match = "DIVERGED"
		}
		fmt.Fprintf(&b, "%9s %6d %9.1f %9.3f %8.2f%% %8d %8d %9d  %s\n",
			r.Mode, r.Batch, r.WallMs, r.StepsPerSec, r.OverheadPct,
			r.Records, r.Commits, r.LedgerBytes, match)
	}
	fmt.Fprintf(&b, "(%s)\n", d.Note)
	return b.String()
}
