package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"anton/internal/core"
	"anton/internal/ledger"
	"anton/internal/machine"
	"anton/internal/obs"
	"anton/internal/system"
	"anton/internal/trace"
)

// PhaseGroupProfile is one row of the measured-vs-model comparison: a
// group of engine pipeline phases matched to one machine-model task row.
type PhaseGroupProfile struct {
	Name        string  `json:"name"`
	MeasuredNs  int64   `json:"measured_ns"`
	MeasuredPct float64 `json:"measured_pct"`
	ModelUs     float64 `json:"model_us"`
	ModelPct    float64 `json:"model_pct"`
}

// ProfileData is the structured result of the profile experiment — the
// same numbers the text report prints, in the committed BENCH_obs.json
// record. Schema follows the observability wire version so trace and
// profile artifacts version together.
type ProfileData struct {
	Schema string `json:"schema"`
	System string `json:"system"`
	Atoms  int    `json:"atoms"`
	Steps  int    `json:"steps"`
	Nodes  int    `json:"nodes"`
	// StateDigest is the run's final state digest (%016x of
	// core.Sim.StateDigest): the trajectory identity of the exact run
	// this record profiles, auditable against a run ledger.
	StateDigest string `json:"state_digest"`

	Groups []PhaseGroupProfile `json:"phase_groups"`

	MatchEfficiencyMeasured float64 `json:"match_efficiency_measured"`
	MatchEfficiencyModel    float64 `json:"match_efficiency_model"`
	Subdiv                  int     `json:"subdiv"`
	MeanBatchOccupancy      float64 `json:"mean_batch_occupancy"`

	MigrationDriftA   float64 `json:"migration_drift_a"`
	MigrationInterval int     `json:"migration_interval"`
	ResidencySlackA   float64 `json:"residency_slack_a"`

	ForcedMigrations int64 `json:"forced_migrations"`
	TotalMigrations  int64 `json:"total_migrations"`

	// Ledger counters from the run's attached provenance ledger
	// (DESIGN §15): the profiled run is itself ledgered, so the record
	// carries what its own provenance cost in records, commits and
	// bytes.
	LedgerRecords int64 `json:"ledger_records"`
	LedgerCommits int64 `json:"ledger_commits"`
	LedgerBytes   int64 `json:"ledger_bytes"`

	MemTracked     bool    `json:"mem_tracked"`
	MallocsPerStep float64 `json:"mallocs_per_step,omitempty"`
	NumGC          int64   `json:"num_gc,omitempty"`
}

// ProfileMeasured runs the fixed-point core engine with the observability
// layer attached and compares the measured per-phase execution profile
// against the calibrated Anton machine model's prediction for the same
// workload — the software analogue of checking Table 2's task rows
// against the hardware. Absolute times are incomparable (a Go process vs
// 512 ASICs), so the comparison is over phase *shares* of the force
// pipeline, where the workload ratios should agree to first order.
func ProfileMeasured(steps int) (string, error) {
	d, err := defaultProfileData(steps)
	if err != nil {
		return "", err
	}
	return renderProfile(d), nil
}

// ProfileJSON runs the profile experiment and returns the structured
// record as indented JSON — the generator of the committed
// BENCH_obs.json artifact (make bench-obs).
func ProfileJSON(steps int) ([]byte, error) {
	d, err := defaultProfileData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func defaultProfileData(steps int) (*ProfileData, error) {
	s, err := system.Small(true, 77)
	if err != nil {
		return nil, err
	}
	return profileData(s, steps, 8)
}

// profileMeasured is the system-parameterized worker behind
// ProfileMeasured, shared with the package tests.
func profileMeasured(s *system.System, steps, nodes int) (string, error) {
	d, err := profileData(s, steps, nodes)
	if err != nil {
		return "", err
	}
	return renderProfile(d), nil
}

// profileData runs the instrumented engine and collects the structured
// measured-vs-model profile.
func profileData(s *system.System, steps, nodes int) (*ProfileData, error) {
	cfg := core.DefaultConfig(nodes)
	e, err := core.NewEngine(s, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))

	rec := obs.NewRecorder()
	rec.EnableMemStats()
	e.Observe(rec)

	// The profiled run carries its own provenance ledger (batched mode,
	// discarded afterwards) so the obs ledger counters in the record are
	// measured, not zero.
	ldir, err := os.MkdirTemp("", "profileledger")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ldir)
	lw, err := ledger.Create(filepath.Join(ldir, "profile.ledger"), ledger.Options{})
	if err != nil {
		return nil, err
	}
	defer lw.Close()
	if err := lw.AppendGenesis(ledger.Genesis{
		Fingerprint: e.FingerprintHex(),
		System:      s.Name,
		Atoms:       s.NAtoms(),
	}); err != nil {
		return nil, err
	}
	core.AttachLedger(e, lw, 0)

	// Record one frame per migration interval, so the trajectory's
	// per-frame minimum-image displacement is exactly the drift the
	// residency slack must absorb.
	tr := trace.New(s.NAtoms())
	if err := tr.Record(0, 0, e.Positions(), 0); err != nil {
		return nil, err
	}
	interval := cfg.MigrationInterval
	for done := 0; done < steps; done += interval {
		n := interval
		if steps-done < n {
			n = steps - done
		}
		e.Step(n)
		if err := tr.Record(e.StepCount(), float64(e.StepCount())*cfg.Dt, e.Positions(), 0); err != nil {
			return nil, err
		}
	}
	if err := lw.Close(); err != nil {
		return nil, err
	}
	lst := lw.Stats()
	snap := rec.Snapshot()

	// The machine model's prediction for the same workload on a small
	// Anton configuration.
	w := machine.WorkloadFromSystem(s)
	w.Dt = cfg.Dt
	w.MTSInterval = cfg.MTSInterval
	m, err := machine.New(nodes)
	if err != nil {
		return nil, err
	}
	pred := machine.DefaultModel.Estimate(m, w)

	// Measured force-pipeline phase groups vs the model's task rows.
	ns := func(ps ...obs.Phase) int64 {
		var t int64
		for _, p := range ps {
			t += snap.Phases[p].Ns
		}
		return t
	}
	groups := []PhaseGroupProfile{
		{Name: "range-limited", MeasuredNs: ns(obs.PhasePairGather, obs.PhasePairMatch, obs.PhasePairReduce), ModelUs: pred.RangeLimited * 1e6},
		{Name: "FFT", MeasuredNs: ns(obs.PhaseFFT), ModelUs: pred.FFT * 1e6},
		{Name: "mesh spread+interp", MeasuredNs: ns(obs.PhaseMeshSpread, obs.PhaseMeshInterp), ModelUs: pred.MeshInterp * 1e6},
		{Name: "corrections", MeasuredNs: ns(obs.PhasePair14, obs.PhaseExclusion), ModelUs: pred.Correction * 1e6},
		{Name: "bonded", MeasuredNs: ns(obs.PhaseBonded), ModelUs: pred.Bonded * 1e6},
		{Name: "integration+constr", MeasuredNs: ns(obs.PhaseIntegration, obs.PhaseConstraints), ModelUs: pred.Integration * 1e6},
	}
	var measTotal int64
	var predTotal float64
	for _, g := range groups {
		measTotal += g.MeasuredNs
		predTotal += g.ModelUs
	}
	for i := range groups {
		if measTotal > 0 {
			groups[i].MeasuredPct = 100 * float64(groups[i].MeasuredNs) / float64(measTotal)
		}
		if predTotal > 0 {
			groups[i].ModelPct = 100 * groups[i].ModelUs / predTotal
		}
	}

	d := &ProfileData{
		Schema:      obs.SchemaVersion,
		System:      s.Name,
		Atoms:       s.NAtoms(),
		Steps:       steps,
		Nodes:       nodes,
		StateDigest: fmt.Sprintf("%016x", e.StateDigest()),
		Groups:      groups,

		MatchEfficiencyMeasured: snap.MatchEfficiency,
		MatchEfficiencyModel:    pred.MatchEfficiency,
		Subdiv:                  pred.Subdiv,
		MeanBatchOccupancy:      snap.MeanOccupancy,

		MigrationDriftA:   tr.MaxDisplacementPBC(s.Box),
		MigrationInterval: interval,
		ResidencySlackA:   e.MigrationSlack(),

		ForcedMigrations: snap.Counters[obs.CtrResidencyMigrations].Value,
		TotalMigrations:  snap.Counters[obs.CtrMigrations].Value,

		LedgerRecords: lst.Records,
		LedgerCommits: lst.Commits,
		LedgerBytes:   lst.Bytes,

		MemTracked: snap.Mem.Tracked,
	}
	if snap.Mem.Tracked {
		d.MallocsPerStep = snap.Mem.MallocsPerStep
		d.NumGC = snap.Mem.NumGC
	}
	return d, nil
}

// renderProfile formats the structured profile as the experiment's
// plain-text report.
func renderProfile(d *ProfileData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Measured vs machine-model-predicted phase profile (%s, %d atoms, %d steps, %d nodes):\n",
		d.System, d.Atoms, d.Steps, d.Nodes)
	fmt.Fprintf(&b, "%-20s %12s %8s   %12s %8s\n", "phase group", "meas ms", "share", "model us", "share")
	for _, g := range d.Groups {
		fmt.Fprintf(&b, "%-20s %12.2f %7.1f%%   %12.3f %7.1f%%\n",
			g.Name, float64(g.MeasuredNs)/1e6, g.MeasuredPct, g.ModelUs, g.ModelPct)
	}
	fmt.Fprintf(&b, "(shares are of the force-pipeline total; absolute scales differ by design)\n\n")
	fmt.Fprintf(&b, "match efficiency: measured %.1f%%, model estimate %.1f%% (subdiv %d)\n",
		100*d.MatchEfficiencyMeasured, 100*d.MatchEfficiencyModel, d.Subdiv)
	fmt.Fprintf(&b, "mean PPIP batch occupancy: %.1f%%\n", 100*d.MeanBatchOccupancy)

	// Residency safety margin: the slack must comfortably exceed the
	// worst per-migration-interval drift.
	fmt.Fprintf(&b, "migration-interval drift: max %.3f A per %d steps vs %.3f A residency slack (%.0f%% headroom)\n",
		d.MigrationDriftA, d.MigrationInterval, d.ResidencySlackA,
		100*(d.ResidencySlackA-d.MigrationDriftA)/d.ResidencySlackA)
	fmt.Fprintf(&b, "forced early migrations: %d of %d\n", d.ForcedMigrations, d.TotalMigrations)
	fmt.Fprintf(&b, "provenance: %d ledger records, %d commits, %d bytes (batched mode)\n",
		d.LedgerRecords, d.LedgerCommits, d.LedgerBytes)
	if d.MemTracked {
		fmt.Fprintf(&b, "allocations: %.1f/step (%d GCs over the run)\n",
			d.MallocsPerStep, d.NumGC)
	}
	return b.String()
}
