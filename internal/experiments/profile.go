package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"anton/internal/core"
	"anton/internal/machine"
	"anton/internal/obs"
	"anton/internal/system"
	"anton/internal/trace"
)

// ProfileMeasured runs the fixed-point core engine with the observability
// layer attached and compares the measured per-phase execution profile
// against the calibrated Anton machine model's prediction for the same
// workload — the software analogue of checking Table 2's task rows
// against the hardware. Absolute times are incomparable (a Go process vs
// 512 ASICs), so the comparison is over phase *shares* of the force
// pipeline, where the workload ratios should agree to first order.
func ProfileMeasured(steps int) (string, error) {
	s, err := system.Small(true, 77)
	if err != nil {
		return "", err
	}
	return profileMeasured(s, steps, 8)
}

// profileMeasured is the system-parameterized worker behind
// ProfileMeasured, shared with the package tests.
func profileMeasured(s *system.System, steps, nodes int) (string, error) {
	cfg := core.DefaultConfig(nodes)
	e, err := core.NewEngine(s, cfg)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(7))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))

	rec := obs.NewRecorder()
	rec.EnableMemStats()
	e.Observe(rec)

	// Record one frame per migration interval, so the trajectory's
	// per-frame minimum-image displacement is exactly the drift the
	// residency slack must absorb.
	tr := trace.New(s.NAtoms())
	if err := tr.Record(0, 0, e.Positions(), 0); err != nil {
		return "", err
	}
	interval := cfg.MigrationInterval
	for done := 0; done < steps; done += interval {
		n := interval
		if steps-done < n {
			n = steps - done
		}
		e.Step(n)
		if err := tr.Record(e.StepCount(), float64(e.StepCount())*cfg.Dt, e.Positions(), 0); err != nil {
			return "", err
		}
	}
	snap := rec.Snapshot()

	// The machine model's prediction for the same workload on a small
	// Anton configuration.
	w := machine.WorkloadFromSystem(s)
	w.Dt = cfg.Dt
	w.MTSInterval = cfg.MTSInterval
	m, err := machine.New(nodes)
	if err != nil {
		return "", err
	}
	pred := machine.DefaultModel.Estimate(m, w)

	// Measured force-pipeline phase groups vs the model's task rows.
	ns := func(ps ...obs.Phase) int64 {
		var t int64
		for _, p := range ps {
			t += snap.Phases[p].Ns
		}
		return t
	}
	groups := []struct {
		name      string
		measured  int64
		predicted float64
	}{
		{"range-limited", ns(obs.PhasePairGather, obs.PhasePairMatch, obs.PhasePairReduce), pred.RangeLimited},
		{"FFT", ns(obs.PhaseFFT), pred.FFT},
		{"mesh spread+interp", ns(obs.PhaseMeshSpread, obs.PhaseMeshInterp), pred.MeshInterp},
		{"corrections", ns(obs.PhasePair14, obs.PhaseExclusion), pred.Correction},
		{"bonded", ns(obs.PhaseBonded), pred.Bonded},
		{"integration+constr", ns(obs.PhaseIntegration, obs.PhaseConstraints), pred.Integration},
	}
	var measTotal int64
	var predTotal float64
	for _, g := range groups {
		measTotal += g.measured
		predTotal += g.predicted
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Measured vs machine-model-predicted phase profile (%s, %d atoms, %d steps, %d nodes):\n",
		s.Name, s.NAtoms(), steps, nodes)
	fmt.Fprintf(&b, "%-20s %12s %8s   %12s %8s\n", "phase group", "meas ms", "share", "model us", "share")
	for _, g := range groups {
		fmt.Fprintf(&b, "%-20s %12.2f %7.1f%%   %12.3f %7.1f%%\n",
			g.name,
			float64(g.measured)/1e6, 100*float64(g.measured)/float64(measTotal),
			g.predicted*1e6, 100*g.predicted/predTotal)
	}
	fmt.Fprintf(&b, "(shares are of the force-pipeline total; absolute scales differ by design)\n\n")
	fmt.Fprintf(&b, "match efficiency: measured %.1f%%, model estimate %.1f%% (subdiv %d)\n",
		100*snap.MatchEfficiency, 100*pred.MatchEfficiency, pred.Subdiv)
	fmt.Fprintf(&b, "mean PPIP batch occupancy: %.1f%%\n", 100*snap.MeanOccupancy)

	// Residency safety margin: the slack must comfortably exceed the
	// worst per-migration-interval drift.
	drift := tr.MaxDisplacementPBC(s.Box)
	slack := e.MigrationSlack()
	fmt.Fprintf(&b, "migration-interval drift: max %.3f A per %d steps vs %.3f A residency slack (%.0f%% headroom)\n",
		drift, interval, slack, 100*(slack-drift)/slack)
	forced := snap.Counters[obs.CtrResidencyMigrations].Value
	fmt.Fprintf(&b, "forced early migrations: %d of %d\n", forced, snap.Counters[obs.CtrMigrations].Value)
	if snap.Mem.Tracked {
		fmt.Fprintf(&b, "allocations: %.1f/step (%d GCs over the run)\n",
			snap.Mem.MallocsPerStep, snap.Mem.NumGC)
	}
	return b.String(), nil
}
