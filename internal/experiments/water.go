package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"anton/internal/analysis"
	"anton/internal/core"
	"anton/internal/system"
	"anton/internal/trace"
)

// WaterStructure validates that the engine produces liquid-like water: it
// runs a TIP3P box on the Anton engine and computes the O-O radial
// distribution function, which for liquid water shows its first peak near
// 2.8 Å. This is the §5.2-style "higher-level test" applied to the
// solvent itself: correct forces plus correct dynamics yield correct
// structure.
func WaterStructure(steps, sampleEvery int) (string, error) {
	s, err := system.Small(false, 9) // 215 waters
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(8)
	eng, err := core.NewEngine(s, cfg)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(71))
	eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	eng.Step(80) // equilibrate off the lattice

	tr := trace.New(s.NAtoms())
	for done := 0; done < steps; done += sampleEvery {
		eng.Step(sampleEvery)
		if err := tr.Record(eng.StepCount(), float64(eng.StepCount())*cfg.Dt, eng.Positions(), 0); err != nil {
			return "", err
		}
	}

	// Oxygen selection: every 3rd site of TIP3P.
	var oxy []int
	for i, a := range s.Top.Atoms {
		if a.Name == "OW" {
			oxy = append(oxy, i)
		}
	}
	r, g, err := analysis.RDF(tr.PositionFrames(), s.Box, oxy, oxy, 8.0, 40)
	if err != nil {
		return "", err
	}
	pos, height, ok := analysis.FirstPeak(r, g, 1.2)

	var b strings.Builder
	fmt.Fprintf(&b, "Water O-O radial distribution function (Anton engine, %d waters, %d frames)\n",
		s.Waters, tr.Len())
	for i := 0; i < len(r); i += 2 {
		bar := strings.Repeat("#", int(g[i]*10))
		if len(bar) > 40 {
			bar = bar[:40]
		}
		fmt.Fprintf(&b, "r=%4.1f  g=%5.2f %s\n", r[i], g[i], bar)
	}
	if !ok {
		return b.String(), fmt.Errorf("experiments: no O-O structure peak found")
	}
	fmt.Fprintf(&b, "\nfirst peak: r = %.2f Å, g = %.2f (liquid water: ~2.8 Å)\n", pos, height)
	if pos < 2.2 || pos > 3.6 {
		return b.String(), fmt.Errorf("experiments: O-O peak at %.2f Å outside the water range", pos)
	}
	return b.String(), nil
}
