package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/fixp"
	"anton/internal/obs"
	"anton/internal/system"
)

// MeshScalingRow is one configuration's measurements in the mesh
// strong-scaling experiment: an engine stepped with the long-range mesh
// refreshed every step, at a given GOMAXPROCS, worker count and shard
// count. Shards == 0 denotes the monolithic engine.
type MeshScalingRow struct {
	GoMaxProcs   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards"` // 0 = monolithic engine
	WallMs       float64 `json:"wall_ms"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	Speedup      float64 `json:"speedup"`       // vs the gomaxprocs=1 monolithic row
	BitwiseMatch bool    `json:"bitwise_match"` // trajectory identical to the reference

	// Mesh-phase split per long-range refresh, from the attached recorder.
	SpreadMsPerEval float64 `json:"mesh_spread_ms_per_eval"`
	FFTMsPerEval    float64 `json:"fft_ms_per_eval"`
	InterpMsPerEval float64 `json:"mesh_interp_ms_per_eval"`
}

// MeshScalingData is the structured record of the mesh strong-scaling
// experiment (the BENCH_meshscaling.json artifact): steps/sec of the
// allocation-free mesh/FFT hot path across GOMAXPROCS and shard counts at
// DHFR scale, with the mesh refreshed on every step so the long-range
// path dominates, plus the bitwise-invariance column that makes the
// speedups meaningful (same trajectory, faster).
type MeshScalingData struct {
	Schema   string `json:"schema"`
	System   string `json:"system"`
	Atoms    int    `json:"atoms"`
	Mesh     int    `json:"mesh"`
	Steps    int    `json:"steps"`
	HostCPUs int    `json:"host_cpus"`
	Note     string `json:"note"`
	// StateDigest is the reference run's final state digest — the
	// trajectory identity every row's bitwise_match is judged against.
	StateDigest string           `json:"state_digest"`
	Rows        []MeshScalingRow `json:"rows"`
}

// MeshScaling runs the mesh strong-scaling experiment and renders the
// plain-text report.
func MeshScaling(steps int) (string, error) {
	d, err := meshScalingData(steps)
	if err != nil {
		return "", err
	}
	return renderMeshScaling(d), nil
}

// MeshScalingJSON runs the mesh strong-scaling experiment and returns the
// structured record as indented JSON — the generator of the committed
// BENCH_meshscaling.json artifact (make scaling).
func MeshScalingJSON(steps int) ([]byte, error) {
	d, err := meshScalingData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// meshScalingConfig forces the long-range mesh path on every step so the
// experiment measures the spread/FFT/interpolate pipeline, not the pair
// kernel's amortization of it.
func meshScalingConfig(nodes, workers int) core.Config {
	cfg := core.DefaultConfig(nodes)
	cfg.MTSInterval = 1
	cfg.Workers = workers
	return cfg
}

func meshScalingData(steps int) (*MeshScalingData, error) {
	s, err := system.ByName("DHFR")
	if err != nil {
		return nil, err
	}
	cpus := runtime.NumCPU()
	d := &MeshScalingData{
		Schema:   obs.SchemaVersion,
		System:   s.Name,
		Atoms:    s.NAtoms(),
		Mesh:     s.Mesh,
		Steps:    steps,
		HostCPUs: cpus,
		Note: "strong scaling of the mesh/FFT hot path; speedup > 1 requires " +
			"more than one host CPU — on a single-CPU host every row measures " +
			"the same serial work plus scheduling overhead, and the " +
			"bitwise_match column is the result that must hold everywhere",
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	// gomaxprocs=1 monolithic single-worker run: the speedup baseline and
	// the bitwise reference.
	var refP []fixp.Vec3
	var refV []core.Vel3
	var baseWall time.Duration
	gmps := []int{}
	for g := 1; g <= cpus; g *= 2 {
		gmps = append(gmps, g)
	}
	for _, gmp := range gmps {
		runtime.GOMAXPROCS(gmp)
		for _, shards := range []int{0, 1, 8} {
			row, p, v, digest, err := meshScalingRun(steps, gmp, shards)
			if err != nil {
				return nil, err
			}
			if refP == nil {
				refP, refV = p, v
				baseWall = time.Duration(row.WallMs * 1e6)
				d.StateDigest = digest
			}
			row.BitwiseMatch = bitwiseState(p, v, refP, refV)
			row.Speedup = baseWall.Seconds() / (row.WallMs / 1e3)
			d.Rows = append(d.Rows, *row)
		}
	}
	return d, nil
}

// meshScalingRun steps one configuration and returns its row, final
// state, and state digest. Shards == 0 runs the monolithic engine;
// otherwise the sharded pipeline with that many virtual nodes.
func meshScalingRun(steps, gmp, shards int) (*MeshScalingRow, []fixp.Vec3, []core.Vel3, string, error) {
	s, err := system.ByName("DHFR")
	if err != nil {
		return nil, nil, nil, "", err
	}
	workers := gmp
	rec := obs.NewRecorder()
	var stepFn func(int)
	var snapFn func() ([]fixp.Vec3, []core.Vel3)
	var digFn func() uint64
	if shards == 0 {
		e, err := core.NewEngine(s, meshScalingConfig(512, workers))
		if err != nil {
			return nil, nil, nil, "", err
		}
		rng := rand.New(rand.NewSource(7))
		e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		e.Observe(rec)
		stepFn, snapFn, digFn = e.Step, e.Snapshot, e.StateDigest
	} else {
		sh, err := core.NewSharded(s, meshScalingConfig(shards, workers))
		if err != nil {
			return nil, nil, nil, "", err
		}
		defer sh.Close()
		rng := rand.New(rand.NewSource(7))
		sh.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		sh.Observe(rec)
		stepFn, snapFn, digFn = sh.Step, sh.Snapshot, sh.StateDigest
	}

	start := time.Now()
	stepFn(steps)
	wall := time.Since(start)
	p, v := snapFn()
	mp := rec.Snapshot().MeshPath

	return &MeshScalingRow{
		GoMaxProcs:      gmp,
		Workers:         workers,
		Shards:          shards,
		WallMs:          float64(wall.Nanoseconds()) / 1e6,
		StepsPerSec:     float64(steps) / wall.Seconds(),
		SpreadMsPerEval: mp.SpreadMsPerEval,
		FFTMsPerEval:    mp.FFTMsPerEval,
		InterpMsPerEval: mp.InterpMsPerEval,
	}, p, v, fmt.Sprintf("%016x", digFn()), nil
}

func bitwiseState(p []fixp.Vec3, v []core.Vel3, refP []fixp.Vec3, refV []core.Vel3) bool {
	for i := range refP {
		if p[i] != refP[i] || v[i] != refV[i] {
			return false
		}
	}
	return true
}

// renderMeshScaling formats the structured record as the experiment's
// plain-text report.
func renderMeshScaling(d *MeshScalingData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mesh/FFT strong scaling (%s, %d atoms, %d^3 mesh, %d steps, long range every step):\n",
		d.System, d.Atoms, d.Mesh, d.Steps)
	fmt.Fprintf(&b, "%5s %8s %7s %9s %9s %8s %9s %8s %9s  %s\n",
		"gmp", "workers", "shards", "steps/s", "wall ms", "speedup",
		"spread", "fft", "interp", "bitwise")
	for _, r := range d.Rows {
		match := "match"
		if !r.BitwiseMatch {
			match = "DIVERGED"
		}
		engine := fmt.Sprintf("%d", r.Shards)
		if r.Shards == 0 {
			engine = "mono"
		}
		fmt.Fprintf(&b, "%5d %8d %7s %9.3f %9.0f %8.2f %8.1fms %7.1fms %8.1fms  %s\n",
			r.GoMaxProcs, r.Workers, engine, r.StepsPerSec, r.WallMs, r.Speedup,
			r.SpreadMsPerEval, r.FFTMsPerEval, r.InterpMsPerEval, match)
	}
	fmt.Fprintf(&b, "(host has %d CPUs; %s)\n", d.HostCPUs, d.Note)
	return b.String()
}
