package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/machine"
	"anton/internal/system"
)

// BPTI runs the paper's §5.3 headline system — 17,758 particles, 892
// protein atoms, 6 chloride ions, 4215 four-site TIP4P-Ew waters in a
// 51.3-Å cube with a 10.4-Å cutoff and a 32³ mesh — for a short stretch
// on the Anton engine, reporting the engine's health, the measured Go
// wall time per step, and the calibrated model's projection of what the
// real machine achieves on the same workload.
func BPTI(steps int) (string, error) {
	s, err := system.ByName("BPTI")
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(8)
	cfg.MigrationInterval = 1
	cfg.Slack = 2.8
	eng, err := core.NewEngine(s, cfg)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(53))
	eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))

	t0 := time.Now()
	eng.Step(steps)
	wall := time.Since(t0)

	var b strings.Builder
	fmt.Fprintf(&b, "BPTI — the millisecond system (§5.3)\n")
	fmt.Fprintf(&b, "composition: %d particles = %d protein atoms + %d Cl- + %d TIP4P-Ew waters x 4\n",
		s.NAtoms(), s.ProteinAtoms, s.Ions, s.Waters)
	fmt.Fprintf(&b, "box %.1f Å, cutoff %.1f Å, mesh %d^3, 2.5-fs steps, long-range every other step\n",
		s.Box.L.X, s.Cutoff, s.Mesh)
	fmt.Fprintf(&b, "\nran %d steps: T = %.0f K (synthetic packing still thermalizing), ME = %.0f%%\n",
		eng.StepCount(), eng.Temperature(), eng.Stats.MatchEfficiency()*100)
	perStep := wall.Seconds() / float64(steps)
	fmt.Fprintf(&b, "this Go implementation: %.2f s/step -> %.4f us/day\n",
		perStep, 2.5e-9*86400/perStep)

	m, err := machine.New(512)
	if err != nil {
		return "", err
	}
	p := machine.DefaultModel.Estimate(m, machine.WorkloadFromSystem(s))
	fmt.Fprintf(&b, "modelled 512-node Anton: %.1f us/step -> %.1f us/day (paper: 9.8 initially, 18.2 tuned)\n",
		p.Average*1e6, p.RatePerDay)
	fmt.Fprintf(&b, "the 1031-us run at the modelled rate: %.0f days (the paper's took ~3 months)\n",
		1031/p.RatePerDay)
	fmt.Fprintf(&b, "Anton's modelled advantage over this single-core software: %.0fx\n",
		p.RatePerDay/(2.5e-9*86400/perStep))
	return b.String(), nil
}
