package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"anton/internal/analysis"
	"anton/internal/core"
	"anton/internal/gomodel"
	"anton/internal/machine"
	"anton/internal/nt"
	"anton/internal/refmd"
	"anton/internal/system"
	"anton/internal/trace"
	"anton/internal/vec"
)

// Fig5 reproduces the performance-vs-system-size curves: protein-in-water
// and water-only series on a 512-node machine.
func Fig5() (string, error) {
	m, err := machine.New(512)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: 512-node performance vs chemical system size\n")
	fmt.Fprintf(&b, "%-8s %10s %16s %16s\n", "system", "atoms", "protein(us/day)", "water-only")
	paper := map[string]float64{"gpW": 18.7, "DHFR": 16.4, "aSFP": 11.2, "NADHOx": 6.4, "FtsZ": 5.8, "T7Lig": 5.5}
	for _, name := range system.Table4Names() {
		spec, _ := system.SpecFor(name)
		w := machine.WorkloadFromSpec(spec)
		prot := machine.DefaultModel.Estimate(m, w)
		wWater := w
		wWater.BondTerms = 0
		wWater.Exclusions = w.Atoms // 3 per 3-site water molecule
		water := machine.DefaultModel.Estimate(m, wWater)
		fmt.Fprintf(&b, "%-8s %10d %9.1f (%4.1f) %12.1f\n",
			name, spec.TotalAtoms, prot.RatePerDay, paper[name], water.RatePerDay)
	}
	fmt.Fprintf(&b, "(water-only runs faster: no bond terms — paper reports 3-24%% gains)\n")
	return b.String(), nil
}

// Fig5Curve sweeps a continuous range of synthetic system sizes through
// the performance model, producing the smooth curves behind Figure 5
// (the named systems are single points on these curves). Box sizes track
// liquid water density; protein systems carry a typical protein fraction.
func Fig5Curve() (string, error) {
	m, err := machine.New(512)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (curves): modelled 512-node rate vs atom count\n")
	fmt.Fprintf(&b, "%-10s %10s %14s %14s\n", "atoms", "side (Å)", "protein", "water-only")
	for _, atoms := range []int{5000, 10000, 20000, 30000, 40000, 60000, 80000, 100000, 120000} {
		side := math.Cbrt(float64(atoms) / 3 / system.WaterNumberDensity)
		mesh := 32
		if side > 80 {
			mesh = 64
		}
		cutoff := 11.0
		protAtoms := atoms / 10
		spec := system.Spec{
			Name: "sweep", TotalAtoms: atoms, Side: side, Cutoff: cutoff, Mesh: mesh,
			ProteinAtoms: protAtoms,
		}
		w := machine.WorkloadFromSpec(spec)
		prot := machine.DefaultModel.Estimate(m, w)
		wWater := w
		wWater.BondTerms = 0
		water := machine.DefaultModel.Estimate(m, wWater)
		fmt.Fprintf(&b, "%-10d %10.1f %14.1f %14.1f\n",
			atoms, side, prot.RatePerDay, water.RatePerDay)
	}
	fmt.Fprintf(&b, "(plateau below ~25k atoms, inverse-size decline above — Figure 5's shape)\n")
	return b.String(), nil
}

// Fig3 reproduces the import-region comparison behind Figure 3: NT vs
// half-shell vs the symmetric mesh variant, and the subbox expansion.
func Fig3() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: import-region volumes (Å^3), 13-Å cutoff\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %12s %12s\n",
		"box side", "NT", "half-shell", "NT/HS", "mesh plate", "subbox(2^3)")
	for _, side := range []float64{32, 16, 8, 4} {
		c := nt.Config{BoxSide: side, Cutoff: 13}
		c2 := nt.Config{BoxSide: side, Cutoff: 13, Subdiv: 2}
		fmt.Fprintf(&b, "%-10g %12.0f %12.0f %10.2f %12.0f %12.0f\n",
			side, c.ImportVolume(), c.HalfShellImportVolume(),
			c.ImportVolume()/c.HalfShellImportVolume(),
			c.MeshPlateImportVolume(13*7.1/10.4), c2.SubboxImportVolume())
	}
	fmt.Fprintf(&b, "(the NT advantage grows as boxes shrink — higher parallelism)\n")
	return b.String(), nil
}

// Fig6 reproduces the backbone amide order-parameter comparison: S² per
// residue estimated from an Anton-engine trajectory, a reference-engine
// (Desmond-class) trajectory, and a synthetic "NMR" measurement. steps
// and sampleEvery size the trajectories.
func Fig6(steps, sampleEvery int) (string, error) {
	built, err := system.ByName("GB3")
	if err != nil {
		return "", err
	}
	// Relax the synthetic packing before production (see equilibrate).
	s, eqVel, err := equilibrate(built, 150)
	if err != nil {
		return "", err
	}
	// Backbone N-HN bonds and CA alignment selection per residue.
	nRes := s.ProteinAtoms / system.AtomsPerResidue
	var bonds [][2]int
	var alignSel []int
	for i := 0; i < nRes; i++ {
		base := i * system.AtomsPerResidue
		bonds = append(bonds, [2]int{base, base + 1}) // N -> HN
		alignSel = append(alignSel, base+2)           // CA
	}

	runAnton := func(seed int64) ([][]vec.V3, error) {
		cfg := core.DefaultConfig(8)
		cfg.MigrationInterval = 1
		cfg.Slack = 2.8
		eng, err := core.NewEngine(s, cfg)
		if err != nil {
			return nil, err
		}
		if seed == 101 {
			eng.SetVelocities(eqVel)
		} else {
			rng := rand.New(rand.NewSource(seed))
			eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		}
		tr := trace.New(s.NAtoms())
		for done := 0; done < steps; done += sampleEvery {
			eng.Step(sampleEvery)
			if err := tr.Record(eng.StepCount(), float64(eng.StepCount())*cfg.Dt, eng.Positions(), 0); err != nil {
				return nil, err
			}
		}
		return tr.PositionFrames(), nil
	}
	runRef := func(seed int64) ([][]vec.V3, error) {
		cfg := refmd.DefaultConfig(s)
		eng, err := refmd.NewEngine(s, cfg)
		if err != nil {
			return nil, err
		}
		if seed == 101 {
			eng.SetVelocities(eqVel)
		} else {
			rng := rand.New(rand.NewSource(seed))
			eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		}
		tr := trace.New(s.NAtoms())
		for done := 0; done < steps; done += sampleEvery {
			eng.Step(sampleEvery)
			if err := tr.Record(eng.StepCount(), float64(eng.StepCount())*cfg.Dt, eng.R, 0); err != nil {
				return nil, err
			}
		}
		return tr.PositionFrames(), nil
	}

	antonFrames, err := runAnton(101)
	if err != nil {
		return "", err
	}
	refFrames, err := runRef(101)
	if err != nil {
		return "", err
	}
	// Synthetic "NMR": an independent trajectory (different seed) plus
	// measurement noise — standing in for the experimental data of paper
	// reference [13], which compares by shape.
	nmrFrames, err := runRef(202)
	if err != nil {
		return "", err
	}

	antonS2, err := analysis.OrderParametersFromTrajectory(antonFrames, alignSel, bonds)
	if err != nil {
		return "", err
	}
	refS2, err := analysis.OrderParametersFromTrajectory(refFrames, alignSel, bonds)
	if err != nil {
		return "", err
	}
	nmrS2, err := analysis.OrderParametersFromTrajectory(nmrFrames, alignSel, bonds)
	if err != nil {
		return "", err
	}
	noise := rand.New(rand.NewSource(303))
	for i := range nmrS2 {
		nmrS2[i] += noise.NormFloat64() * 0.01
		if nmrS2[i] > 1 {
			nmrS2[i] = 1
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: GB3 backbone amide order parameters (S²) per residue\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s\n", "residue", "Anton", "refMD", "\"NMR\"")
	var meanAbsDiff float64
	for i := range bonds {
		fmt.Fprintf(&b, "%-8d %8.3f %8.3f %8.3f\n", i, antonS2[i], refS2[i], nmrS2[i])
		meanAbsDiff += abs(antonS2[i] - refS2[i])
	}
	meanAbsDiff /= float64(len(bonds))
	fmt.Fprintf(&b, "mean |Anton - refMD| = %.4f (the two engines' estimates should be highly similar;\n", meanAbsDiff)
	fmt.Fprintf(&b, "residual differences reflect chaotic divergence of finite trajectories — paper §5.2)\n")
	return b.String(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig7 reproduces the folding/unfolding trace: a structure-based model
// run at a temperature near its melting point, reporting the Q(t) series
// and the number of folded/unfolded transitions (the paper observed "a
// sequence of folding and unfolding events" in gpW over 236 µs). The
// model fold is reduced from gpW's 62 residues to 28 so that barrier
// crossings are kinetically accessible within a test-scale step budget —
// the same reason the phenomenon needed 236 µs of all-atom time in the
// paper (see DESIGN.md substitutions).
func Fig7(steps int) (string, error) {
	nRes := 28
	s, err := system.Build(system.Spec{
		Name: "gpW-fold", TotalAtoms: nRes*system.AtomsPerResidue + 300, Side: 90,
		Cutoff: 10, Mesh: 32, ProteinAtoms: nRes * system.AtomsPerResidue, Seed: 21,
	})
	if err != nil {
		return "", err
	}
	var cas []vec.V3
	for i := 0; i < nRes; i++ {
		cas = append(cas, s.R[i*system.AtomsPerResidue+2])
	}
	model, err := gomodel.New(cas, 8.5)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: folding/unfolding events near the melting temperature\n")
	best, bestT := -1, 0.0
	var bestQ []float64
	for _, T := range []float64{520, 560, 600} {
		sim := gomodel.NewSim(model, T, 17)
		q := sim.FoldingTrace(steps, steps/200)
		n := analysis.TransitionCount(q, 0.72, 0.35)
		fmt.Fprintf(&b, "T=%4.0fK: %3d transitions, mean Q %.2f\n", T, n, analysis.Mean(q))
		if n > best {
			best, bestT, bestQ = n, T, q
		}
	}
	fmt.Fprintf(&b, "\nQ(t) at T=%.0fK (one row per sample; * marks folded >0.75, . unfolded <0.35):\n", bestT)
	line := make([]byte, 0, len(bestQ))
	for _, q := range bestQ {
		switch {
		case q > 0.72:
			line = append(line, '*')
		case q < 0.35:
			line = append(line, '.')
		default:
			line = append(line, '-')
		}
	}
	for i := 0; i < len(line); i += 80 {
		end := i + 80
		if end > len(line) {
			end = len(line)
		}
		fmt.Fprintf(&b, "%s\n", line[i:end])
	}
	fmt.Fprintf(&b, "transitions at the melting temperature: %d (paper: repeated events — Figure 7a-c)\n", best)
	return b.String(), nil
}
