package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"anton/internal/core"
	"anton/internal/faults"
	"anton/internal/obs"
	"anton/internal/system"
)

// ChaosRow is one shard count's measurements in the chaos-soak
// experiment (the BENCH_chaos.json record): the cost and the outcome of
// running the full fault campaign — message faults, stalls, one shard
// crash with checkpoint rollback — against the sharded engine.
type ChaosRow struct {
	Shards       int     `json:"shards"`
	WallMs       float64 `json:"wall_ms"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	BitwiseMatch bool    `json:"bitwise_match"` // final state identical to the fault-free monolithic run

	Recoveries   int64   `json:"recoveries"`
	ReplaySteps  int64   `json:"replay_steps"`
	MeanRecovMs  float64 `json:"mean_recovery_ms"`
	Adoptions    int64   `json:"adoptions"`
	DeadShards   int     `json:"dead_shards"`
	Sends        int64   `json:"sends"`
	Retransmits  int64   `json:"retransmits"`
	RetxOverhead float64 `json:"retransmit_overhead"` // retransmits / sends

	Injected faults.Counts `json:"injected"`
}

// ChaosData is the structured result of the chaos-soak experiment.
type ChaosData struct {
	Schema string `json:"schema"`
	System string `json:"system"`
	Atoms  int    `json:"atoms"`
	Steps  int    `json:"steps"`
	Spec   string `json:"spec"`
	// StateDigest is the fault-free reference trajectory's final state
	// digest — the identity every faulted run must reproduce bitwise.
	StateDigest string     `json:"state_digest"`
	Rows        []ChaosRow `json:"rows"`
}

// chaosCampaignSpec is the experiment's standard fault mix: every fault
// class at rates that exercise the transport hard, plus one crash inside
// the first three quarters of the run so the recovery path (rollback,
// replay, re-exchange) is always measured.
func chaosCampaignSpec(steps int) (faults.Spec, error) {
	sp, err := faults.ParseSpec(
		"seed=7,drop=0.03,dup=0.02,delay=0.03,corrupt=0.01,stall=0.004,maxstall=5ms")
	if err != nil {
		return faults.Spec{}, err
	}
	sp.Crashes = 1
	sp.CrashHorizon = 3 * steps / 4
	if sp.CrashHorizon < 1 {
		sp.CrashHorizon = 1
	}
	return sp, nil
}

// Chaos runs the chaos-soak experiment and renders the plain-text
// report.
func Chaos(steps int) (string, error) {
	d, err := chaosData(steps)
	if err != nil {
		return "", err
	}
	return renderChaos(d), nil
}

// ChaosJSON runs the chaos-soak experiment and returns the structured
// record as indented JSON — the generator of the committed
// BENCH_chaos.json artifact (make chaos).
func ChaosJSON(steps int) ([]byte, error) {
	d, err := chaosData(steps)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func chaosData(steps int) (*ChaosData, error) {
	s, err := system.Small(true, 21)
	if err != nil {
		return nil, err
	}
	spec, err := chaosCampaignSpec(steps)
	if err != nil {
		return nil, err
	}
	d := &ChaosData{
		Schema: obs.SchemaVersion,
		System: s.Name,
		Atoms:  s.NAtoms(),
		Steps:  steps,
		Spec:   spec.String(),
	}

	// The acceptance bar: the fault-free monolithic trajectory.
	refP, refV, refDigest, err := shardReference(steps)
	if err != nil {
		return nil, err
	}
	d.StateDigest = refDigest

	for _, shards := range []int{1, 8, 64} {
		sys, err := system.Small(true, 21)
		if err != nil {
			return nil, err
		}
		sh, err := core.NewSharded(sys, core.DefaultConfig(shards))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(33))
		sh.SetVelocities(system.InitVelocities(sys.Top, 300, rng))

		plane := faults.New(spec, sh.Shards())
		if err := sh.EnableFaults(core.FaultConfig{
			Plane:           plane,
			CheckpointEvery: 10,
			Heartbeat:       250 * time.Millisecond,
		}); err != nil {
			sh.Close()
			return nil, err
		}

		start := time.Now()
		sh.Step(steps)
		wall := time.Since(start)
		if err := sh.Err(); err != nil {
			sh.Close()
			return nil, fmt.Errorf("experiments: chaos run on %d shards parked: %w", shards, err)
		}

		p, v := sh.Snapshot()
		match := true
		for i := range refP {
			if p[i] != refP[i] || v[i] != refV[i] {
				match = false
				break
			}
		}
		rep := sh.FaultReport()
		sh.Close()

		row := ChaosRow{
			Shards:       shards,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			StepsPerSec:  float64(steps) / wall.Seconds(),
			BitwiseMatch: match,
			Recoveries:   rep.Recoveries,
			ReplaySteps:  rep.ReplaySteps,
			Adoptions:    rep.Adoptions,
			DeadShards:   len(rep.DeadShards),
			Sends:        rep.Transport.Sends,
			Retransmits:  rep.Transport.Retransmits,
			Injected:     rep.Injected,
		}
		if rep.Recoveries > 0 {
			row.MeanRecovMs = float64(rep.RecoveryNs) / float64(rep.Recoveries) / 1e6
		}
		if rep.Transport.Sends > 0 {
			row.RetxOverhead = float64(rep.Transport.Retransmits) / float64(rep.Transport.Sends)
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// renderChaos formats the structured record as the experiment's
// plain-text report.
func renderChaos(d *ChaosData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak (%s, %d atoms, %d steps per run):\n", d.System, d.Atoms, d.Steps)
	fmt.Fprintf(&b, "campaign: %s\n", d.Spec)
	fmt.Fprintf(&b, "%7s %9s %6s %7s %9s %8s %7s %8s  %s\n",
		"shards", "steps/s", "recov", "replay", "recov ms", "sends", "retx", "overhead", "bitwise")
	for _, r := range d.Rows {
		match := "match"
		if !r.BitwiseMatch {
			match = "DIVERGED"
		}
		fmt.Fprintf(&b, "%7d %9.2f %6d %7d %9.1f %8d %7d %8.4f  %s\n",
			r.Shards, r.StepsPerSec, r.Recoveries, r.ReplaySteps, r.MeanRecovMs,
			r.Sends, r.Retransmits, r.RetxOverhead, match)
	}
	fmt.Fprintf(&b, "(every row injects drops, dups, delays, corruption, stalls and one\n")
	fmt.Fprintf(&b, " shard crash; recovery rolls every shard back to the last checkpoint\n")
	fmt.Fprintf(&b, " and replays — the bitwise column is the correctness verdict)\n")
	return b.String()
}
