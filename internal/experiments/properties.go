package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"anton/internal/core"
	"anton/internal/machine"
	"anton/internal/system"
)

// Properties demonstrates the section 4 numerical properties on a small
// system: determinism, parallel invariance across node counts, and exact
// time reversibility.
func Properties(steps int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4 numerical properties (%d steps each)\n", steps)

	// Determinism.
	run := func(nodes int, seed int64) (*core.Engine, error) {
		s, err := system.Small(true, 21)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEngine(s, core.DefaultConfig(nodes))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
		e.Step(steps)
		return e, nil
	}
	e1, err := run(8, 33)
	if err != nil {
		return "", err
	}
	e2, err := run(8, 33)
	if err != nil {
		return "", err
	}
	p1, v1 := e1.Snapshot()
	p2, v2 := e2.Snapshot()
	identical := true
	for i := range p1 {
		if p1[i] != p2[i] || v1[i] != v2[i] {
			identical = false
			break
		}
	}
	fmt.Fprintf(&b, "determinism (two identical runs, 8 nodes): bitwise identical = %v\n", identical)

	// Parallel invariance.
	e64, err := run(64, 33)
	if err != nil {
		return "", err
	}
	p64, v64 := e64.Snapshot()
	invariant := true
	for i := range p1 {
		if p1[i] != p64[i] || v1[i] != v64[i] {
			invariant = false
			break
		}
	}
	fmt.Fprintf(&b, "parallel invariance (8 vs 64 nodes): bitwise identical = %v\n", invariant)

	// Exact reversibility (unconstrained, unthermostatted).
	s, err := system.IonicFluid(60, 16.0, 6.5, 16, 91)
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(8)
	cfg.TauT = 0
	cfg.Dt = 2.0
	e, err := core.NewEngine(s, cfg)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(35))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	rp0, rv0 := e.Snapshot()
	revSteps := steps - steps%cfg.MTSInterval
	e.Step(revSteps)
	e.NegateVelocities()
	e.Step(revSteps)
	rp1, rv1 := e.Snapshot()
	reversible := true
	for i := range rp0 {
		if rp1[i] != rp0[i] || rv1[i] != rv0[i].Neg() {
			reversible = false
			break
		}
	}
	fmt.Fprintf(&b, "exact reversibility (forward %d, negate, back %d): recovered bit-for-bit = %v\n",
		revSteps, revSteps, reversible)

	if !identical || !invariant || !reversible {
		return b.String(), fmt.Errorf("experiments: a section-4 property failed")
	}
	return b.String(), nil
}

// Partition reproduces the section 5.1 scaling study: DHFR across machine
// sizes, the 128-node partition datapoint, and the commodity-cluster
// comparison.
func Partition() (string, error) {
	spec, _ := system.SpecFor("DHFR")
	w := machine.WorkloadFromSpec(spec)
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.1: DHFR simulation rates across configurations\n")
	fmt.Fprintf(&b, "%-18s %12s\n", "configuration", "us/day")
	var r512 float64
	for _, nodes := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		m, err := machine.New(nodes)
		if err != nil {
			return "", err
		}
		p := machine.DefaultModel.Estimate(m, w)
		note := ""
		if nodes == 512 {
			note = "  (paper: 16.4)"
			r512 = p.RatePerDay
		}
		if nodes == 128 {
			note = "  (paper: 7.5, as a partition of the 512-node machine)"
		}
		fmt.Fprintf(&b, "Anton %5d nodes %12.1f%s\n", nodes, p.RatePerDay, note)
	}
	for _, nodes := range []int{32, 128, 512} {
		rate := machine.DefaultCluster.RatePerDay(w, nodes)
		note := ""
		if nodes == 512 {
			note = "  (paper: 0.471 — Desmond's best published datapoint)"
		}
		fmt.Fprintf(&b, "cluster %4d nodes %12.3f%s\n", nodes, rate, note)
	}
	cl512 := machine.DefaultCluster.RatePerDay(w, 512)
	fmt.Fprintf(&b, "\nAnton-512 over cluster-512: %.0fx (paper: ~35x over Desmond's best,\n", r512/cl512)
	fmt.Fprintf(&b, "two orders of magnitude over the ~0.1 us/day of practical cluster use)\n")
	return b.String(), nil
}
