// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index): the execution-time
// profiles of Table 2, the match efficiencies of Table 3, the
// performance/accuracy matrix of Table 4, the size-scaling curves of
// Figure 5, the order-parameter comparison of Figure 6, the
// folding/unfolding trace of Figure 7, the import-region comparison
// behind Figure 3, and the section 4/5.1 property and scaling
// experiments. Each experiment returns a formatted text report; the
// cmd/antonbench binary and the top-level benchmark suite both drive
// these entry points.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"anton/internal/analysis"
	"anton/internal/core"
	"anton/internal/machine"
	"anton/internal/nt"
	"anton/internal/refmd"
	"anton/internal/system"
	"anton/internal/vec"
)

// Table1 reproduces the longest-published-simulations table, extending it
// with this reproduction's projected Anton timescales from the calibrated
// performance model.
func Table1() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: longest published all-atom protein MD simulations (paper data)\n")
	fmt.Fprintf(&b, "%-8s %-12s %-14s %-10s\n", "Len(us)", "Protein", "Hardware", "Software")
	rows := []struct {
		len      float64
		protein  string
		hardware string
		software string
	}{
		{1031, "BPTI", "Anton", "[native]"},
		{236, "gpW", "Anton", "[native]"},
		{10, "WW domain", "x86 cluster", "NAMD"},
		{2, "villin HP-35", "x86", "GROMACS"},
		{2, "rhodopsin", "Blue Gene/L", "Blue Matter"},
		{2, "b2AR", "x86 cluster", "Desmond"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8g %-12s %-14s %-10s\n", r.len, r.protein, r.hardware, r.software)
	}
	// Model-projected wall-clock for the BPTI millisecond on this
	// reproduction's machine model.
	spec, _ := system.SpecFor("BPTI")
	m, err := machine.New(512)
	if err != nil {
		return "", err
	}
	p := machine.DefaultModel.Estimate(m, machine.WorkloadFromSpec(spec))
	days := 1031.0 / p.RatePerDay
	fmt.Fprintf(&b, "\nModelled BPTI rate on 512 nodes: %.1f us/day -> %.0f days for the 1031-us run\n",
		p.RatePerDay, days)
	fmt.Fprintf(&b, "(the paper's run proceeded at 9.8 us/day initially, 18.2 after tuning)\n")
	return b.String(), nil
}

// Table2 reproduces the execution-time profile comparison: GROMACS-class
// x86 core vs Anton, for both electrostatics parameter sets, on the DHFR
// benchmark.
func Table2() (string, error) {
	spec, ok := system.SpecFor("DHFR")
	if !ok {
		return "", fmt.Errorf("experiments: DHFR spec missing")
	}
	mkWorkload := func(cutoff float64, mesh int) machine.Workload {
		w := machine.WorkloadFromSpec(spec)
		w.Cutoff = cutoff
		w.Mesh = mesh
		w.RSpread = cutoff * 7.1 / 10.4
		return w
	}
	small := mkWorkload(9, 64)
	large := mkWorkload(13, 32)
	x86S := machine.DefaultX86.Estimate(small)
	x86L := machine.DefaultX86.Estimate(large)
	m, err := machine.New(512)
	if err != nil {
		return "", err
	}
	antS := machine.DefaultModel.Estimate(m, small)
	antL := machine.DefaultModel.Estimate(m, large)

	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: per-time-step execution profile, DHFR (23,558 atoms)\n")
	fmt.Fprintf(&b, "columns: x86 small(9Å,64³) | x86 large(13Å,32³) | Anton small | Anton large\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s %12s\n", "task", "ms", "ms", "us", "us")
	row := func(name string, a, bb float64, c, d float64) {
		fmt.Fprintf(&b, "%-22s %12.1f %12.1f %12.1f %12.1f\n", name, a*1e3, bb*1e3, c*1e6, d*1e6)
	}
	row("Range-limited forces", x86S.RangeLimited, x86L.RangeLimited, antS.RangeLimited, antL.RangeLimited)
	row("FFT & inverse FFT", x86S.FFT, x86L.FFT, antS.FFT, antL.FFT)
	row("Mesh interpolation", x86S.MeshInterp, x86L.MeshInterp, antS.MeshInterp, antL.MeshInterp)
	row("Correction forces", x86S.Correction, x86L.Correction, antS.Correction, antL.Correction)
	row("Bonded forces", x86S.Bonded, x86L.Bonded, antS.Bonded, antL.Bonded)
	row("Integration", x86S.Integration, x86L.Integration, antS.Integration, antL.Integration)
	row("Total (long-range step)", x86S.Total, x86L.Total, antS.TotalLongRange, antL.TotalLongRange)
	fmt.Fprintf(&b, "\npaper totals: 88.5 ms | 184.5 ms | 39.2 us | 15.4 us\n")
	fmt.Fprintf(&b, "x86 slowdown from parameter change: %.2fx (paper ~2.1x)\n", x86L.Total/x86S.Total)
	fmt.Fprintf(&b, "Anton speedup from parameter change: %.2fx (paper ~2.5x)\n", antS.TotalLongRange/antL.TotalLongRange)
	return b.String(), nil
}

// Table2Measured runs the actual Go reference engine on a reduced system
// and reports the measured wall-time shares per task — confirming that
// the commodity profile *shape* (range-limited dominance) emerges from a
// real implementation, not only the analytic model.
func Table2Measured(steps int) (string, error) {
	s, err := system.Small(true, 77)
	if err != nil {
		return "", err
	}
	cfg := refmd.DefaultConfig(s)
	e, err := refmd.NewEngine(s, cfg)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(7))
	e.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	e.Step(steps)

	var total float64
	for t := refmd.TaskRangeLimited; t <= refmd.TaskPairList; t++ {
		total += e.Profile[t].Seconds()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Measured Go reference-engine profile (%d atoms, %d steps):\n", s.NAtoms(), steps)
	for t := refmd.TaskRangeLimited; t <= refmd.TaskPairList; t++ {
		sec := e.Profile[t].Seconds()
		fmt.Fprintf(&b, "%-22s %8.2f ms  (%4.1f%%)\n", refmd.TaskNames[t], sec*1e3, 100*sec/total)
	}
	return b.String(), nil
}

// Table3 reproduces the NT-method match-efficiency grid.
func Table3(samples int) (string, error) {
	if samples <= 0 {
		samples = 300000
	}
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: match efficiency of the NT method, 13-Å cutoff\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "box side", "1x1x1", "2x2x2", "4x4x4")
	paper := map[[2]int]int{
		{8, 1}: 25, {8, 2}: 40, {8, 4}: 51,
		{16, 1}: 12, {16, 2}: 25, {16, 4}: 40,
		{32, 1}: 4, {32, 2}: 12, {32, 4}: 25,
	}
	for _, side := range []int{8, 16, 32} {
		fmt.Fprintf(&b, "%-12d", side)
		for _, subdiv := range []int{1, 2, 4} {
			me := nt.MatchEfficiency(nt.Config{BoxSide: float64(side), Cutoff: 13, Subdiv: subdiv}, rng, samples)
			fmt.Fprintf(&b, "  %3.0f%%(%2d%%)", me*100, paper[[2]int{side, subdiv}])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(measured%%, paper%% in parentheses)\n")
	return b.String(), nil
}

// Table4Row holds one system's Table 4 measurements.
type Table4Row struct {
	Name            string
	Atoms           int
	Side            float64
	Cutoff          float64
	Mesh            int
	RateUsPerDay    float64 // modelled
	EnergyDrift     float64 // kcal/mol/DoF/us, measured (NaN if skipped)
	TotalForceErr   float64 // vs conservative double-precision reference
	NumericForceErr float64 // vs same-parameter double-precision reference
}

// Table4 reproduces the accuracy/performance matrix. In quick mode only
// gpW runs the (expensive) dynamical measurements; the modelled rates
// cover all six systems either way. driftSteps controls the length of the
// NVE drift measurement.
func Table4(quick bool, driftSteps int) (string, []Table4Row, error) {
	m, err := machine.New(512)
	if err != nil {
		return "", nil, err
	}
	var rows []Table4Row
	for _, name := range system.Table4Names() {
		spec, _ := system.SpecFor(name)
		p := machine.DefaultModel.Estimate(m, machine.WorkloadFromSpec(spec))
		row := Table4Row{
			Name: name, Atoms: spec.TotalAtoms, Side: spec.Side,
			Cutoff: spec.Cutoff, Mesh: spec.Mesh,
			RateUsPerDay: p.RatePerDay,
		}
		measure := name == "gpW" || !quick
		if measure {
			drift, totErr, numErr, err := measureAccuracy(name, driftSteps)
			if err != nil {
				return "", nil, fmt.Errorf("measuring %s: %w", name, err)
			}
			row.EnergyDrift = drift
			row.TotalForceErr = totErr
			row.NumericForceErr = numErr
		}
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: accuracy and performance of the protein systems (512 nodes)\n")
	fmt.Fprintf(&b, "%-8s %8s %7s %7s %5s %10s %12s %12s %12s\n",
		"system", "atoms", "side", "cutoff", "mesh", "us/day", "drift", "tot f-err", "num f-err")
	paperRate := map[string]float64{"gpW": 18.7, "DHFR": 16.4, "aSFP": 11.2, "NADHOx": 6.4, "FtsZ": 5.8, "T7Lig": 5.5}
	for _, r := range rows {
		drift := "-"
		tot := "-"
		num := "-"
		if r.TotalForceErr != 0 {
			drift = fmt.Sprintf("%.3f", r.EnergyDrift)
			tot = fmt.Sprintf("%.1e", r.TotalForceErr)
			num = fmt.Sprintf("%.1e", r.NumericForceErr)
		}
		fmt.Fprintf(&b, "%-8s %8d %7.1f %7.1f %5d %5.1f(%4.1f) %12s %12s %12s\n",
			r.Name, r.Atoms, r.Side, r.Cutoff, r.Mesh, r.RateUsPerDay, paperRate[r.Name], drift, tot, num)
	}
	fmt.Fprintf(&b, "(us/day: modelled, paper value in parentheses. paper errors: total ~6-8e-5, numerical ~9e-6;\n")
	fmt.Fprintf(&b, " paper drift: 0.015-0.053 kcal/mol/DoF/us)\n")
	return b.String(), rows, nil
}

// equilibrate relaxes a freshly built (lattice-packed) system with a
// short, tightly thermostatted small-step run on the reference engine,
// returning a copy of the system with the equilibrated coordinates and
// the final velocities. Synthetic initial structures carry packing
// hotspots that would otherwise inject heat into the measurement runs.
func equilibrate(s *system.System, steps int) (*system.System, []vec.V3, error) {
	// Stage 1: small steps, tight thermostat — drains packing hotspots.
	cfg := refmd.DefaultConfig(s)
	cfg.Dt = 0.5
	cfg.TauT = 5
	cfg.TargetT = 300
	eng, err := refmd.NewEngine(s, cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(1234))
	eng.SetVelocities(system.InitVelocities(s.Top, 300, rng))
	eng.Step(steps)

	// Stage 2: intermediate step with moderate coupling — settles the
	// water orientations that still carry large torques after stage 1.
	mid := *s
	mid.R = make([]vec.V3, len(eng.R))
	for i := range eng.R {
		mid.R[i] = s.Box.Wrap(eng.R[i])
	}
	cfg2 := refmd.DefaultConfig(&mid)
	cfg2.Dt = 1.25
	cfg2.TauT = 25
	cfg2.TargetT = 300
	eng2, err := refmd.NewEngine(&mid, cfg2)
	if err != nil {
		return nil, nil, err
	}
	eng2.SetVelocities(eng.V)
	eng2.Step(steps)

	out := *s
	out.R = make([]vec.V3, len(eng2.R))
	for i := range eng2.R {
		out.R[i] = s.Box.Wrap(eng2.R[i])
	}
	return &out, append([]vec.V3(nil), eng2.V...), nil
}

// measureAccuracy runs the Anton engine on the named system and measures
// the Table 4 error columns:
//   - numerical force error: Anton forces vs a double-precision engine
//     with the *same* parameters (GSE, same sigma/mesh);
//   - total force error: Anton forces vs a conservative reference (exact
//     k-space sum with a large kmax on small systems; high-order SPME on
//     a finer mesh otherwise);
//   - energy drift: NVE total-energy slope over driftSteps.
func measureAccuracy(name string, driftSteps int) (drift, totErr, numErr float64, err error) {
	built, err := system.ByName(name)
	if err != nil {
		return 0, 0, 0, err
	}
	s, vel, err := equilibrate(built, 120)
	if err != nil {
		return 0, 0, 0, err
	}
	// Anton engine forces.
	cfg := core.DefaultConfig(8)
	cfg.MTSInterval = 1
	cfg.MigrationInterval = 1
	cfg.Slack = 2.8
	eng, err := core.NewEngine(s, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	eng.Step(0) // force evaluation at the initial state
	antonF := eng.Forces()

	// Same-parameter double-precision reference (numerical force error).
	rcfg := refmd.DefaultConfig(s)
	rcfg.Method = refmd.UseGSE
	rcfg.MTSInterval = 1
	ref, err := refmd.NewEngine(s, rcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	ref.ComputeForces()
	numErr, err = analysis.ForceError(antonF, ref.F)
	if err != nil {
		return 0, 0, 0, err
	}

	// Conservative reference (total force error): SPME order 8 on a
	// double-resolution mesh with a tighter Ewald tolerance.
	ccfg := refmd.DefaultConfig(s)
	ccfg.Method = refmd.UseSPME
	ccfg.SPMEOrder = 8
	ccfg.Mesh = s.Mesh * 2
	ccfg.EwaldTol = 1e-7
	ccfg.MTSInterval = 1
	cons, err := refmd.NewEngine(s, ccfg)
	if err != nil {
		return 0, 0, 0, err
	}
	cons.ComputeForces()
	totErr, err = analysis.ForceError(antonF, cons.F)
	if err != nil {
		return 0, 0, 0, err
	}

	// Energy drift: unthermostatted run from the equilibrated state.
	dcfg := core.DefaultConfig(8)
	dcfg.TauT = 0
	dcfg.MigrationInterval = 1
	dcfg.Slack = 2.8
	deng, err := core.NewEngine(s, dcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	deng.SetVelocities(vel)
	var times, energies []float64
	deng.Step(4) // settle constraints/quantization
	for step := 0; step < driftSteps; step += 2 {
		deng.Step(2)
		times = append(times, float64(deng.StepCount())*dcfg.Dt)
		energies = append(energies, deng.TotalEnergy())
	}
	drift, err = analysis.EnergyDrift(times, energies, s.Top.DegreesOfFreedom())
	if err != nil {
		return 0, 0, 0, err
	}
	return drift, totErr, numErr, nil
}
