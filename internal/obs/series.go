package obs

import "sync"

// StepSample is one per-step entry of the live telemetry time series:
// the thermodynamic state a dashboard plots against step index.
type StepSample struct {
	Step            int64   `json:"step"`
	TimeFs          float64 `json:"time_fs"`
	Temperature     float64 `json:"temperature_k"`
	TotalEnergy     float64 `json:"total_energy"`
	PotentialEnergy float64 `json:"potential_energy"`
	KineticEnergy   float64 `json:"kinetic_energy"`
}

// Series is a bounded ring of per-step samples. Unlike the Recorder it
// is internally locked: the simulation loop appends while HTTP handlers
// read concurrently.
type Series struct {
	mu    sync.Mutex
	ring  []StepSample
	head  int
	count int
	total int64
}

// NewSeries builds a series retaining the last capacity samples
// (minimum 16).
func NewSeries(capacity int) *Series {
	if capacity < 16 {
		capacity = 16
	}
	return &Series{ring: make([]StepSample, capacity)}
}

// Append records one sample, evicting the oldest at capacity.
func (s *Series) Append(sm StepSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring[s.head] = sm
	s.head = (s.head + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
	s.total++
}

// Latest returns the most recent sample.
func (s *Series) Latest() (StepSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return StepSample{}, false
	}
	i := s.head - 1
	if i < 0 {
		i += len(s.ring)
	}
	return s.ring[i], true
}

// Snapshot returns the retained samples oldest-first (copied).
func (s *Series) Snapshot() []StepSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StepSample, 0, s.count)
	start := s.head - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// Total returns the number of samples ever appended.
func (s *Series) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
