package obs

import (
	"net/http"
	"sort"
	"sync"
)

// TelemetrySet multiplexes many Telemetry surfaces behind one HTTP
// server. The per-run CLI binds one Telemetry to one listener; a
// multi-tenant daemon instead keeps one surface per job and routes
// /jobs/{id}/metrics-style requests here. Surfaces outlive their jobs on
// purpose: a completed job's last published snapshot stays scrapeable
// until the set is told to drop it.
//
// The set is safe for concurrent use: workers publish into their job's
// surface while HTTP handlers resolve and read others.
type TelemetrySet struct {
	mu sync.RWMutex
	m  map[string]*Telemetry
}

// NewTelemetrySet builds an empty set.
func NewTelemetrySet() *TelemetrySet {
	return &TelemetrySet{m: make(map[string]*Telemetry)}
}

// Acquire returns the surface for key, creating it if absent.
func (s *TelemetrySet) Acquire(key string) *Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[key]
	if !ok {
		t = NewTelemetry()
		s.m[key] = t
	}
	return t
}

// Get returns the surface for key, or nil.
func (s *TelemetrySet) Get(key string) *Telemetry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key]
}

// Drop removes the surface for key. Dropping an absent key is a no-op.
func (s *TelemetrySet) Drop(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Keys lists the registered keys in sorted order.
func (s *TelemetrySet) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ServeEndpoint routes one request to the named endpoint ("metrics",
// "healthz" or "trace" — the same three the standalone Telemetry serves)
// of the surface registered under key. Unknown keys and endpoints answer
// 404, so a daemon can delegate its {id}/{endpoint} route here verbatim.
func (s *TelemetrySet) ServeEndpoint(w http.ResponseWriter, r *http.Request, key, endpoint string) {
	t := s.Get(key)
	if t == nil {
		http.Error(w, "no telemetry for "+key, http.StatusNotFound)
		return
	}
	switch endpoint {
	case "metrics":
		t.serveMetrics(w, r)
	case "healthz":
		t.serveHealthz(w, r)
	case "trace":
		t.serveTrace(w, r)
	default:
		http.Error(w, "unknown telemetry endpoint "+endpoint, http.StatusNotFound)
	}
}
