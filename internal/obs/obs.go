// Package obs is the engine's deterministic observability layer: per-phase
// wall-time accounting, monotonic counters from the HTIS path, batch
// occupancy histograms and per-step allocation/GC deltas, collected into a
// snapshotable registry that renders to text and structured JSON — the
// software twin of the paper's Table 2 execution profile.
//
// The zero-perturbation contract: a Recorder is strictly read-only with
// respect to dynamics state. It observes wall clocks and integer counts
// that the engine produces anyway; it never touches the fixed-point
// datapath, so trajectories are bitwise identical with observability on or
// off (asserted by test in internal/core). The disabled path is a single
// nil-pointer check at phase granularity — never inside the per-pair inner
// loops — so it costs well under 2% on the pair-kernel benchmark.
//
// Concurrency: a Recorder is owned by the engine's coordinating goroutine.
// Worker partials (PPIP batch time, pair tallies) accumulate in per-worker
// state and merge serially after each parallel section, so the Recorder
// itself needs no atomics and stays allocation-free on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Phase identifies one timed section of the engine's step loop. The set
// mirrors the task rows of the paper's Table 2, refined to the software
// engine's actual pipeline stages.
type Phase int

// The step-loop phases, in execution order.
const (
	PhaseDecode      Phase = iota // position decode + residency check
	PhasePairGather               // slot-indexed SoA position gather
	PhasePairMatch                // match-unit scan + exclusion merge + batching (wall; includes PPIP time)
	PhasePairPPIP                 // batched PPIP evaluation (aggregate worker-seconds, inside PhasePairMatch)
	PhasePairReduce               // parallel fixed-order force reduction
	PhaseBonded                   // bonds/angles/dihedrals/impropers on the geometry cores
	PhasePair14                   // scaled 1-4 corrections (fast loop)
	PhaseExclusion                // excluded-pair mesh corrections (slow loop)
	PhaseMeshSpread               // charge spreading onto the mesh
	PhaseFFT                      // forward FFT + Green multiply + inverse FFT
	PhaseMeshInterp               // force interpolation from the mesh
	PhaseConstraints              // SHAKE/RATTLE + virtual sites
	PhaseIntegration              // kicks + drift
	PhaseMigration                // home-box/subbox reassignment + kernel rebuild
	NumPhases
)

var phaseNames = [NumPhases]string{
	"decode", "pair-gather", "pair-match", "pair-ppip", "pair-reduce",
	"bonded", "correction-14", "correction-excl",
	"mesh-spread", "fft", "mesh-interp",
	"constraints", "integration", "migration",
}

// String returns the phase's stable name (used in JSON and reports).
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// wallPhase reports whether the phase is a wall-clock section of the step
// loop (PhasePairPPIP is aggregate worker-seconds nested inside
// PhasePairMatch, so it is excluded from wall-time totals and shares).
func wallPhase(p Phase) bool { return p != PhasePairPPIP }

// Counter identifies one monotonic event counter.
type Counter int

// The engine's monotonic counters. The pair counters come from the HTIS
// path: candidates examined by the match units, pairs passing the
// low-precision check, pairs evaluated by the PPIPs (the numerator and
// denominator of Table 3's match efficiency), and the batch-flush
// bookkeeping of the software PPIP queue.
const (
	CtrPairsConsidered Counter = iota
	CtrPairsMatched
	CtrPairsComputed
	CtrBatchFlushes
	CtrBatchPairs
	CtrMeshInteractions
	CtrMigrations
	CtrResidencyMigrations // migrations forced by a residency-slack violation
	CtrLongRangeEvals      // MTS long-range refreshes

	// The shard transport counters: messages actually exchanged between
	// virtual node shards over the channel transport (zero in monolithic
	// runs). One message per atom per link, matching the per-atom message
	// model of the analytic Comm() estimate.
	CtrShardImportMsgs    // position import messages (home box -> tower/plate importers)
	CtrShardExportMsgs    // force export messages (computing shard -> home box)
	CtrShardMeshMsgs      // mesh charge contributions sent to cell-owner nodes
	CtrShardMigrationMsgs // atoms handed between home boxes at migrations

	// Fault-injection and recovery counters (zero unless a fault plane is
	// attached to the sharded engine). The injected-fault counters mirror
	// the plane's verdict tallies; the transport counters measure the
	// retry/ack machinery's reaction; the recovery counters measure the
	// checkpoint-rollback path.
	CtrFaultDrops    // injected message drops
	CtrFaultDups     // injected message duplications
	CtrFaultDelays   // injected message delays (reordering)
	CtrFaultCorrupts // injected payload bit-flips
	CtrFaultStalls   // injected slow-shard stalls
	CtrFaultCrashes  // injected shard crashes that fired
	CtrRetransmits   // timeout-driven retransmissions
	CtrDupDiscards   // duplicate envelopes dropped by receive-side dedup
	CtrCrcDiscards   // envelopes dropped by the payload CRC check
	CtrRecoveries    // supervised checkpoint-rollback recoveries
	CtrReplaySteps   // steps replayed after rollbacks
	CtrRecoveryNs    // wall time spent in recovery

	// Run-ledger counters (zero unless a provenance ledger is attached):
	// the append/commit/byte volume of the hash-chained audit trail, so
	// the ledger's overhead is itself observable.
	CtrLedgerRecords // provenance records appended
	CtrLedgerCommits // Merkle batch commits sealed (each is one fsync)
	CtrLedgerBytes   // bytes appended to the ledger file

	// Streaming shard-pipeline counters (zero on the barrier path and in
	// monolithic runs). The overlap ratio is stream-overlap-ns over
	// (stream-overlap-ns + stream-blocked-ns): time a shard spent computing
	// while imports were still in flight vs time it sat blocked on a
	// receive. The byte counters measure the wire compression per traffic
	// class: raw is the uncompressed payload size (12 B/position,
	// 24 B/force component triple), wire is the varint frame actually sent.
	CtrStreamOverlapNs // ns computing while imports were still in flight
	CtrStreamBlockedNs // ns blocked on a receive with no ready work
	CtrPosRawBytes     // position payload bytes before compression
	CtrPosWireBytes    // position frame bytes on the wire
	CtrForceRawBytes   // force payload bytes before compression
	CtrForceWireBytes  // force frame bytes on the wire
	NumCounters
)

var counterNames = [NumCounters]string{
	"pairs-considered", "pairs-matched", "pairs-computed",
	"batch-flushes", "batch-pairs", "mesh-interactions",
	"migrations", "residency-migrations", "long-range-evals",
	"shard-import-msgs", "shard-export-msgs", "shard-mesh-msgs",
	"shard-migration-msgs",
	"fault-drops", "fault-dups", "fault-delays", "fault-corrupts",
	"fault-stalls", "fault-crashes", "retransmits", "dup-discards",
	"crc-discards", "recoveries", "replay-steps", "recovery-ns",
	"ledger-records", "ledger-commits", "ledger-bytes",
	"stream-overlap-ns", "stream-blocked-ns",
	"pos-raw-bytes", "pos-wire-bytes",
	"force-raw-bytes", "force-wire-bytes",
}

// String returns the counter's stable name.
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// OccupancyBuckets is the resolution of the batch occupancy histogram:
// flushed batch sizes are binned into this many equal-width buckets of the
// batch capacity (bucket i covers (i, i+1] capacity-fractions / buckets).
const OccupancyBuckets = 8

// PhaseStat accumulates one phase's wall time and call count.
type PhaseStat struct {
	Ns    int64
	Calls int64
}

// Recorder is the engine-attached observability registry. The zero value
// is not usable; call NewRecorder.
type Recorder struct {
	start time.Time

	phases    [NumPhases]PhaseStat
	counters  [NumCounters]int64
	occupancy [OccupancyBuckets]int64
	steps     int64

	// Per-step allocation/GC tracking (opt-in: runtime.ReadMemStats has a
	// measurable cost on large heaps).
	trackMem   bool
	memBase    runtime.MemStats
	mallocs    int64
	allocBytes int64
	numGC      int64
	gcPauseNs  int64
}

// NewRecorder builds an empty registry with its monotonic clock started.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// EnableMemStats turns on per-step allocation/GC delta tracking from the
// current heap state.
func (r *Recorder) EnableMemStats() {
	r.trackMem = true
	runtime.ReadMemStats(&r.memBase)
}

// Now returns the registry's monotonic clock in nanoseconds. Phase
// timestamps are differences of Now values.
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// AddPhase accumulates one timed call of ns nanoseconds into a phase.
func (r *Recorder) AddPhase(p Phase, ns int64) {
	r.phases[p].Ns += ns
	r.phases[p].Calls++
}

// AddPhaseBatch accumulates pre-merged time from calls invocations (the
// per-worker PPIP partials merged after a parallel section).
func (r *Recorder) AddPhaseBatch(p Phase, ns, calls int64) {
	r.phases[p].Ns += ns
	r.phases[p].Calls += calls
}

// Add accumulates n events into a counter.
func (r *Recorder) Add(c Counter, n int64) { r.counters[c] += n }

// AddOccupancy merges a batch-occupancy histogram (same bucket convention
// as OccupancyBuckets).
func (r *Recorder) AddOccupancy(h [OccupancyBuckets]int64) {
	for i, n := range h {
		r.occupancy[i] += n
	}
}

// StepDone marks the end of one time step, capturing allocation/GC deltas
// when enabled.
func (r *Recorder) StepDone() {
	r.steps++
	if !r.trackMem {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	r.mallocs += int64(m.Mallocs - r.memBase.Mallocs)
	r.allocBytes += int64(m.TotalAlloc - r.memBase.TotalAlloc)
	r.numGC += int64(m.NumGC - r.memBase.NumGC)
	r.gcPauseNs += int64(m.PauseTotalNs - r.memBase.PauseTotalNs)
	r.memBase = m
}

// Steps returns the number of completed steps seen by the recorder.
func (r *Recorder) Steps() int64 { return r.steps }

// Counter returns the current value of one counter.
func (r *Recorder) Counter(c Counter) int64 { return r.counters[c] }

// PhaseSnapshot is one phase's rendered accounting.
type PhaseSnapshot struct {
	Name      string  `json:"name"`
	Ns        int64   `json:"ns"`
	Calls     int64   `json:"calls"`
	ShareWall float64 `json:"share_wall"` // fraction of summed wall phases (0 for nested phases)
}

// CounterSnapshot is one counter's rendered value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// OccupancySnapshot is one batch-occupancy bucket.
type OccupancySnapshot struct {
	// Bucket covers flushed batches with occupancy in (Lo, Hi] as a
	// fraction of the batch capacity.
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Flushes int64   `json:"flushes"`
}

// MemSnapshot carries the accumulated allocation/GC deltas.
type MemSnapshot struct {
	Tracked        bool    `json:"tracked"`
	Mallocs        int64   `json:"mallocs"`
	AllocBytes     int64   `json:"alloc_bytes"`
	NumGC          int64   `json:"num_gc"`
	GCPauseNs      int64   `json:"gc_pause_ns"`
	MallocsPerStep float64 `json:"mallocs_per_step"`
}

// MeshPathSnapshot breaks the long-range mesh path into its three phases
// — charge spreading, FFT convolution, force interpolation — normalized
// per MTS refresh, so a reader can see where a long-range evaluation's
// time goes without dividing phase totals by the refresh cadence.
type MeshPathSnapshot struct {
	Refreshes       int64   `json:"refreshes"` // MTS long-range evaluations
	SpreadNs        int64   `json:"spread_ns"`
	FFTNs           int64   `json:"fft_ns"`
	InterpNs        int64   `json:"interp_ns"`
	SpreadMsPerEval float64 `json:"spread_ms_per_eval"`
	FFTMsPerEval    float64 `json:"fft_ms_per_eval"`
	InterpMsPerEval float64 `json:"interp_ms_per_eval"`
}

// Snapshot is the registry's full rendered state: JSON-marshallable,
// self-describing, and stable in field naming.
type Snapshot struct {
	Steps           int64               `json:"steps"`
	WallNs          int64               `json:"wall_ns"`       // recorder lifetime
	PhaseWallNs     int64               `json:"phase_wall_ns"` // sum of wall phases
	Phases          []PhaseSnapshot     `json:"phases"`
	Counters        []CounterSnapshot   `json:"counters"`
	MatchEfficiency float64             `json:"match_efficiency"`
	MeanOccupancy   float64             `json:"mean_batch_occupancy"` // mean flushed batch fill fraction
	Occupancy       []OccupancySnapshot `json:"batch_occupancy"`
	MeshPath        MeshPathSnapshot    `json:"mesh_path"`
	Mem             MemSnapshot         `json:"mem"`
}

// Snapshot renders the registry's current state. Every phase and counter
// appears, including zero-valued ones, so consumers can rely on the full
// schema being present.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Steps:  r.steps,
		WallNs: r.Now(),
	}
	for p := Phase(0); p < NumPhases; p++ {
		if wallPhase(p) {
			s.PhaseWallNs += r.phases[p].Ns
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		ps := PhaseSnapshot{Name: p.String(), Ns: r.phases[p].Ns, Calls: r.phases[p].Calls}
		if wallPhase(p) && s.PhaseWallNs > 0 {
			ps.ShareWall = float64(ps.Ns) / float64(s.PhaseWallNs)
		}
		s.Phases = append(s.Phases, ps)
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.String(), Value: r.counters[c]})
	}
	if considered := r.counters[CtrPairsConsidered]; considered > 0 {
		s.MatchEfficiency = float64(r.counters[CtrPairsComputed]) / float64(considered)
	}
	if flushes := r.counters[CtrBatchFlushes]; flushes > 0 {
		// Mean fill fraction needs the batch capacity; the histogram's
		// bucket midpoints give a capacity-free estimate consistent with
		// the occupancy rendering below.
		var weighted float64
		for i, n := range r.occupancy {
			mid := (float64(i) + 0.5) / OccupancyBuckets
			weighted += mid * float64(n)
		}
		s.MeanOccupancy = weighted / float64(flushes)
	}
	for i, n := range r.occupancy {
		s.Occupancy = append(s.Occupancy, OccupancySnapshot{
			Lo:      float64(i) / OccupancyBuckets,
			Hi:      float64(i+1) / OccupancyBuckets,
			Flushes: n,
		})
	}
	s.MeshPath = MeshPathSnapshot{
		Refreshes: r.counters[CtrLongRangeEvals],
		SpreadNs:  r.phases[PhaseMeshSpread].Ns,
		FFTNs:     r.phases[PhaseFFT].Ns,
		InterpNs:  r.phases[PhaseMeshInterp].Ns,
	}
	if n := s.MeshPath.Refreshes; n > 0 {
		s.MeshPath.SpreadMsPerEval = float64(s.MeshPath.SpreadNs) / 1e6 / float64(n)
		s.MeshPath.FFTMsPerEval = float64(s.MeshPath.FFTNs) / 1e6 / float64(n)
		s.MeshPath.InterpMsPerEval = float64(s.MeshPath.InterpNs) / 1e6 / float64(n)
	}
	s.Mem = MemSnapshot{
		Tracked:    r.trackMem,
		Mallocs:    r.mallocs,
		AllocBytes: r.allocBytes,
		NumGC:      r.numGC,
		GCPauseNs:  r.gcPauseNs,
	}
	if r.trackMem && r.steps > 0 {
		s.Mem.MallocsPerStep = float64(r.mallocs) / float64(r.steps)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// String renders the snapshot as an aligned text report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability over %d steps (%.1f ms wall, %.1f ms in timed phases):\n",
		s.Steps, float64(s.WallNs)/1e6, float64(s.PhaseWallNs)/1e6)
	fmt.Fprintf(&b, "  %-16s %12s %10s %7s\n", "phase", "ms", "calls", "share")
	for _, p := range s.Phases {
		share := "-"
		if p.Name == PhasePairPPIP.String() {
			share = "(nested)"
		} else if s.PhaseWallNs > 0 {
			share = fmt.Sprintf("%5.1f%%", p.ShareWall*100)
		}
		fmt.Fprintf(&b, "  %-16s %12.3f %10d %8s\n", p.Name, float64(p.Ns)/1e6, p.Calls, share)
	}
	fmt.Fprintf(&b, "  counters:\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "    %-22s %14d\n", c.Name, c.Value)
	}
	fmt.Fprintf(&b, "  match efficiency %.1f%%, mean batch occupancy %.1f%%\n",
		s.MatchEfficiency*100, s.MeanOccupancy*100)
	if s.MeshPath.Refreshes > 0 {
		fmt.Fprintf(&b, "  mesh path per refresh (%d refreshes): spread %.3f ms, fft %.3f ms, interp %.3f ms\n",
			s.MeshPath.Refreshes, s.MeshPath.SpreadMsPerEval, s.MeshPath.FFTMsPerEval, s.MeshPath.InterpMsPerEval)
	}
	if s.Mem.Tracked {
		fmt.Fprintf(&b, "  allocs/step %.1f (%d B total), GCs %d (%.2f ms paused)\n",
			s.Mem.MallocsPerStep, s.Mem.AllocBytes, s.Mem.NumGC, float64(s.Mem.GCPauseNs)/1e6)
	}
	return b.String()
}
