package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ServiceStats are the daemon-level supervision counters: what the
// hostile-environment service plane did about storage faults and load.
// They live in obs (not service) so the Prometheus rendering sits next
// to the engine-level counter rendering and shares its conventions:
// monotonic atomics, scraped whole, never reset.
//
// The engine-level Counter enum tracks what happens *inside* one
// simulation; these track what the daemon does *around* jobs — retries,
// requeues, quarantines, shed submissions — which is the difference
// between a storage fault and a lost trajectory.
type ServiceStats struct {
	// PersistRetries counts op-level retries of a persist stage
	// (checkpoint write, status write, checkpoint read-back) after a
	// transient storage fault.
	PersistRetries atomic.Int64

	// JobRequeues counts job-level retryable failures: the job went back
	// to the queue with a backoff delay instead of failing outright.
	JobRequeues atomic.Int64

	// Quarantines counts jobs moved to failed_poisoned — persistent
	// artifacts (status record, checkpoint, ledger) too damaged to trust,
	// or too many consecutive failures.
	Quarantines atomic.Int64

	// Shed counts submissions refused by admission control (bounded
	// queue full → HTTP 429).
	Shed atomic.Int64

	// IdempotentHits counts duplicate submissions answered from the
	// store via their idempotency key instead of creating a new job.
	IdempotentHits atomic.Int64

	// StallAlerts counts progress-heartbeat stall detections: a running
	// job that made no boundary progress within the supervision window.
	StallAlerts atomic.Int64

	// StorageFaults counts injected or real storage faults surfaced to
	// the supervision layer (after any writer-internal retries).
	StorageFaults atomic.Int64
}

// serviceCounterDefs drives the Prometheus rendering; one row per
// counter keeps name, help text and value source in one place.
func (s *ServiceStats) rows() []struct {
	name, help string
	v          int64
} {
	return []struct {
		name, help string
		v          int64
	}{
		{"persist_retries_total", "Op-level persist retries after transient storage faults.", s.PersistRetries.Load()},
		{"job_requeues_total", "Jobs requeued with backoff after a retryable failure.", s.JobRequeues.Load()},
		{"quarantines_total", "Jobs quarantined as failed_poisoned.", s.Quarantines.Load()},
		{"shed_total", "Submissions refused by admission control (queue full).", s.Shed.Load()},
		{"idempotent_hits_total", "Duplicate submissions answered via idempotency key.", s.IdempotentHits.Load()},
		{"stall_alerts_total", "Progress-heartbeat stall detections.", s.StallAlerts.Load()},
		{"storage_faults_total", "Storage faults surfaced to job supervision.", s.StorageFaults.Load()},
	}
}

// WritePrometheus renders the counters in Prometheus text format under
// the given namespace (e.g. "antond" -> antond_persist_retries_total).
func (s *ServiceStats) WritePrometheus(w io.Writer, ns string) {
	for _, r := range s.rows() {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			ns, r.name, r.help, ns, r.name, ns, r.name, r.v)
	}
}
