package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPhaseAndCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || strings.HasPrefix(n, "phase(") {
			t.Errorf("phase %d has no name", p)
		}
		if seen[n] {
			t.Errorf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "counter(") {
			t.Errorf("counter %d has no name", c)
		}
		if seen[n] {
			t.Errorf("counter name %q collides", n)
		}
		seen[n] = true
	}
	if Phase(NumPhases).String() == phaseNames[0] {
		t.Error("out-of-range phase resolved to a real name")
	}
}

func TestRecorderAccumulation(t *testing.T) {
	r := NewRecorder()
	r.AddPhase(PhaseBonded, 100)
	r.AddPhase(PhaseBonded, 50)
	r.AddPhaseBatch(PhasePairPPIP, 300, 4)
	r.Add(CtrPairsConsidered, 1000)
	r.Add(CtrPairsComputed, 400)
	r.Add(CtrBatchFlushes, 2)
	r.AddOccupancy([OccupancyBuckets]int64{0, 0, 0, 0, 0, 0, 1, 1})
	r.StepDone()
	r.StepDone()

	if r.Steps() != 2 {
		t.Fatalf("steps %d", r.Steps())
	}
	if got := r.Counter(CtrPairsConsidered); got != 1000 {
		t.Fatalf("counter %d", got)
	}
	s := r.Snapshot()
	if s.Phases[PhaseBonded].Ns != 150 || s.Phases[PhaseBonded].Calls != 2 {
		t.Errorf("bonded phase %+v", s.Phases[PhaseBonded])
	}
	if s.Phases[PhasePairPPIP].Ns != 300 || s.Phases[PhasePairPPIP].Calls != 4 {
		t.Errorf("ppip phase %+v", s.Phases[PhasePairPPIP])
	}
	// PPIP is nested worker-time: excluded from the wall total and share.
	if s.PhaseWallNs != 150 {
		t.Errorf("phase wall %d, want 150 (ppip must not count)", s.PhaseWallNs)
	}
	if s.Phases[PhasePairPPIP].ShareWall != 0 {
		t.Errorf("nested phase has wall share %v", s.Phases[PhasePairPPIP].ShareWall)
	}
	if s.Phases[PhaseBonded].ShareWall != 1.0 {
		t.Errorf("bonded share %v, want 1", s.Phases[PhaseBonded].ShareWall)
	}
	if s.MatchEfficiency != 0.4 {
		t.Errorf("match efficiency %v, want 0.4", s.MatchEfficiency)
	}
	// Two flushes in the top two buckets: mean occupancy from midpoints
	// (6.5/8 + 7.5/8)/2 = 0.875.
	if s.MeanOccupancy != 0.875 {
		t.Errorf("mean occupancy %v, want 0.875", s.MeanOccupancy)
	}
}

// TestSnapshotJSONComplete renders to JSON and checks the full schema is
// present — every phase, every counter, every occupancy bucket — even on
// an empty recorder, so downstream parsing never needs optional fields.
func TestSnapshotJSONComplete(t *testing.T) {
	for _, rec := range []*Recorder{NewRecorder(), busyRecorder()} {
		var buf bytes.Buffer
		if err := rec.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var back Snapshot
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("emitted invalid JSON: %v", err)
		}
		if len(back.Phases) != int(NumPhases) {
			t.Errorf("%d phases in JSON, want %d", len(back.Phases), NumPhases)
		}
		if len(back.Counters) != int(NumCounters) {
			t.Errorf("%d counters in JSON, want %d", len(back.Counters), NumCounters)
		}
		if len(back.Occupancy) != OccupancyBuckets {
			t.Errorf("%d occupancy buckets, want %d", len(back.Occupancy), OccupancyBuckets)
		}
		for p := Phase(0); p < NumPhases; p++ {
			if back.Phases[p].Name != p.String() {
				t.Errorf("phase %d renders as %q", p, back.Phases[p].Name)
			}
		}
	}
}

func busyRecorder() *Recorder {
	r := NewRecorder()
	r.EnableMemStats()
	for p := Phase(0); p < NumPhases; p++ {
		r.AddPhase(p, int64(p+1)*10)
	}
	for c := Counter(0); c < NumCounters; c++ {
		r.Add(c, int64(c+1))
	}
	r.StepDone()
	return r
}

func TestSnapshotTextReport(t *testing.T) {
	s := busyRecorder().Snapshot()
	text := s.String()
	for p := Phase(0); p < NumPhases; p++ {
		if !strings.Contains(text, p.String()) {
			t.Errorf("text report missing phase %q", p)
		}
	}
	if !strings.Contains(text, "match efficiency") {
		t.Error("text report missing match efficiency line")
	}
	if !strings.Contains(text, "allocs/step") {
		t.Error("text report missing mem line despite tracking on")
	}
}

func TestMemStatsTracking(t *testing.T) {
	r := NewRecorder()
	r.EnableMemStats()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 50; i++ {
		sink = append(sink, make([]byte, 1<<12))
		r.StepDone()
	}
	_ = sink
	s := r.Snapshot()
	if !s.Mem.Tracked {
		t.Fatal("mem not tracked")
	}
	if s.Mem.AllocBytes < 50*(1<<12) {
		t.Errorf("alloc bytes %d, want >= %d", s.Mem.AllocBytes, 50*(1<<12))
	}
	if s.Mem.MallocsPerStep <= 0 {
		t.Errorf("mallocs/step %v", s.Mem.MallocsPerStep)
	}
}
