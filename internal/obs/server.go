package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	"anton/internal/obs/health"
)

// Telemetry is the live export surface of a running simulation: an HTTP
// handler serving
//
//	/metrics  — Prometheus text exposition from the Recorder snapshot
//	            and the per-step time-series ring
//	/healthz  — the watchdog registry's status as JSON (HTTP 503 when a
//	            monitor is latched critical)
//	/trace    — the step tracer's ring as Chrome trace-event JSON
//
// The simulation loop owns the Recorder/Tracer/Registry and periodically
// Publishes immutable copies; handlers only ever read those copies, so
// the engine's single-goroutine observability contract is untouched.
//
// Lifecycle: a Telemetry moves through at most three states — idle (no
// server), serving, and down (Shutdown called). Every ordering of
// Serve/ListenAndServe/Shutdown is safe, including the service-layer
// patterns that the per-run CLI never hit: Shutdown before any Serve
// (a job canceled between creation and listen), Serve after Shutdown
// (a worker racing a daemon drain), and double Shutdown (per-job and
// process-wide teardown paths overlapping). Once down, the surface
// stays down: later Serve calls return nil immediately without binding,
// and no goroutine or listener outlives Shutdown.
type Telemetry struct {
	mu         sync.RWMutex
	snap       Snapshot
	haveSnap   bool
	latest     StepSample
	haveLatest bool
	status     health.Status
	haveStatus bool
	traceJSON  []byte
	srv        *http.Server
	down       bool // Shutdown has been called; the surface never serves again
}

// NewTelemetry builds an empty telemetry surface.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// PublishSnapshot installs the current Recorder snapshot.
func (t *Telemetry) PublishSnapshot(s Snapshot) {
	t.mu.Lock()
	t.snap, t.haveSnap = s, true
	t.mu.Unlock()
}

// PublishSample installs the latest time-series sample.
func (t *Telemetry) PublishSample(s StepSample) {
	t.mu.Lock()
	t.latest, t.haveLatest = s, true
	t.mu.Unlock()
}

// PublishHealth installs a watchdog status copy.
func (t *Telemetry) PublishHealth(s health.Status) {
	t.mu.Lock()
	t.status, t.haveStatus = s, true
	t.mu.Unlock()
}

// PublishTrace renders and installs the tracer's current ring. Must be
// called from the goroutine that owns the tracer.
func (t *Telemetry) PublishTrace(tr *Tracer) error {
	b, err := tr.ExportJSON()
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.traceJSON = b
	t.mu.Unlock()
	return nil
}

// Handler returns the telemetry mux.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/healthz", t.serveHealthz)
	mux.HandleFunc("/trace", t.serveTrace)
	return mux
}

// server lazily builds (once) the http.Server shared by ListenAndServe
// and Serve, so a later Shutdown reaches whichever entry point started
// the listener. The second return is false when Shutdown already ran:
// the caller must not start a new listener (it would never be stopped).
func (t *Telemetry) server(addr string) (*http.Server, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return nil, false
	}
	if t.srv == nil {
		t.srv = &http.Server{Addr: addr, Handler: t.Handler()}
	}
	return t.srv, true
}

// ListenAndServe serves the telemetry surface on addr, blocking until
// Shutdown (returning nil) or a listener error. After Shutdown it
// returns nil immediately without binding.
func (t *Telemetry) ListenAndServe(addr string) error {
	srv, ok := t.server(addr)
	if !ok {
		return nil
	}
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Serve serves the telemetry surface on an existing listener (tests bind
// port 0 themselves to learn the address). Blocks like ListenAndServe
// and returns nil after Shutdown. A Serve that loses the race with
// Shutdown closes ln (it would otherwise leak — nothing else owns it)
// and returns nil.
func (t *Telemetry) Serve(ln net.Listener) error {
	srv, ok := t.server(ln.Addr().String())
	if !ok {
		ln.Close()
		return nil
	}
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops the telemetry surface permanently: the listener closes
// immediately, in-flight scrapes finish (bounded by ctx), the blocked
// ListenAndServe/Serve call returns nil, and any *later* Serve call is
// a no-op. Safe to call when no server was ever started, and safe (and
// idempotent) to call more than once, including concurrently.
func (t *Telemetry) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	if t.srv == nil {
		// Never served: install a pre-shutdown server shell so a racing
		// Serve/ListenAndServe finds it already closed instead of
		// starting a listener nothing would ever stop.
		t.srv = &http.Server{Handler: t.Handler()}
	}
	t.down = true
	srv := t.srv
	t.mu.Unlock()
	return srv.Shutdown(ctx)
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var snap *Snapshot
	if t.haveSnap {
		snap = &t.snap
	}
	var latest *StepSample
	if t.haveLatest {
		latest = &t.latest
	}
	var status *health.Status
	if t.haveStatus {
		status = &t.status
	}
	WriteProm(w, snap, latest, status)
}

func (t *Telemetry) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if !t.haveStatus {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "{\"schema\":%q,\"status\":\"unknown\"}\n", SchemaVersion)
		return
	}
	if t.status.Worst >= health.SevCrit {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.status)
}

func (t *Telemetry) serveTrace(w http.ResponseWriter, _ *http.Request) {
	t.mu.RLock()
	b := t.traceJSON
	t.mu.RUnlock()
	if b == nil {
		http.Error(w, "no trace published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// promEscape sanitizes a label value for the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteProm renders the observability state in Prometheus text
// exposition format. Any of the inputs may be nil; their families are
// simply omitted.
func WriteProm(w io.Writer, snap *Snapshot, latest *StepSample, status *health.Status) {
	fmt.Fprintf(w, "# HELP anton_build_info Observability schema of this process.\n")
	fmt.Fprintf(w, "# TYPE anton_build_info gauge\n")
	fmt.Fprintf(w, "anton_build_info{schema=%q} 1\n", promEscape(SchemaVersion))
	if snap != nil {
		fmt.Fprintf(w, "# HELP anton_steps_total Completed time steps.\n")
		fmt.Fprintf(w, "# TYPE anton_steps_total counter\n")
		fmt.Fprintf(w, "anton_steps_total %d\n", snap.Steps)
		fmt.Fprintf(w, "# HELP anton_phase_seconds_total Wall time per step-pipeline phase.\n")
		fmt.Fprintf(w, "# TYPE anton_phase_seconds_total counter\n")
		for _, p := range snap.Phases {
			fmt.Fprintf(w, "anton_phase_seconds_total{phase=%q} %g\n", promEscape(p.Name), float64(p.Ns)/1e9)
		}
		fmt.Fprintf(w, "# HELP anton_phase_calls_total Timed calls per phase.\n")
		fmt.Fprintf(w, "# TYPE anton_phase_calls_total counter\n")
		for _, p := range snap.Phases {
			fmt.Fprintf(w, "anton_phase_calls_total{phase=%q} %d\n", promEscape(p.Name), p.Calls)
		}
		fmt.Fprintf(w, "# HELP anton_events_total Monotonic engine event counters.\n")
		fmt.Fprintf(w, "# TYPE anton_events_total counter\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "anton_events_total{counter=%q} %d\n", promEscape(c.Name), c.Value)
		}
		fmt.Fprintf(w, "# HELP anton_match_efficiency Pairs computed / pairs considered.\n")
		fmt.Fprintf(w, "# TYPE anton_match_efficiency gauge\n")
		fmt.Fprintf(w, "anton_match_efficiency %g\n", snap.MatchEfficiency)
		fmt.Fprintf(w, "# HELP anton_batch_occupancy_mean Mean PPIP batch fill fraction.\n")
		fmt.Fprintf(w, "# TYPE anton_batch_occupancy_mean gauge\n")
		fmt.Fprintf(w, "anton_batch_occupancy_mean %g\n", snap.MeanOccupancy)
		if snap.Mem.Tracked {
			fmt.Fprintf(w, "# HELP anton_mallocs_per_step Heap allocations per step.\n")
			fmt.Fprintf(w, "# TYPE anton_mallocs_per_step gauge\n")
			fmt.Fprintf(w, "anton_mallocs_per_step %g\n", snap.Mem.MallocsPerStep)
		}
	}
	if latest != nil {
		fmt.Fprintf(w, "# HELP anton_step Current step index.\n")
		fmt.Fprintf(w, "# TYPE anton_step gauge\n")
		fmt.Fprintf(w, "anton_step %d\n", latest.Step)
		fmt.Fprintf(w, "# HELP anton_temperature_kelvin Instantaneous kinetic temperature.\n")
		fmt.Fprintf(w, "# TYPE anton_temperature_kelvin gauge\n")
		fmt.Fprintf(w, "anton_temperature_kelvin %g\n", latest.Temperature)
		fmt.Fprintf(w, "# HELP anton_energy_kcal Energy components, kcal/mol.\n")
		fmt.Fprintf(w, "# TYPE anton_energy_kcal gauge\n")
		fmt.Fprintf(w, "anton_energy_kcal{component=\"total\"} %g\n", latest.TotalEnergy)
		fmt.Fprintf(w, "anton_energy_kcal{component=\"potential\"} %g\n", latest.PotentialEnergy)
		fmt.Fprintf(w, "anton_energy_kcal{component=\"kinetic\"} %g\n", latest.KineticEnergy)
	}
	if status != nil {
		fmt.Fprintf(w, "# HELP anton_health_level Worst latched watchdog severity (0 ok, 1 warn, 2 critical).\n")
		fmt.Fprintf(w, "# TYPE anton_health_level gauge\n")
		fmt.Fprintf(w, "anton_health_level %d\n", int(status.Worst))
		fmt.Fprintf(w, "# HELP anton_health_monitor_level Latched severity per watchdog.\n")
		fmt.Fprintf(w, "# TYPE anton_health_monitor_level gauge\n")
		for _, m := range status.Monitors {
			fmt.Fprintf(w, "anton_health_monitor_level{monitor=%q} %d\n", promEscape(m.Name), int(m.Level))
		}
		fmt.Fprintf(w, "# HELP anton_health_monitor_value Last sampled value per watchdog.\n")
		fmt.Fprintf(w, "# TYPE anton_health_monitor_value gauge\n")
		for _, m := range status.Monitors {
			fmt.Fprintf(w, "anton_health_monitor_value{monitor=%q} %g\n", promEscape(m.Name), m.Value)
		}
	}
}
