package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SchemaVersion names the wire schema shared by every observability
// artifact: the trace exporter's otherData block, the committed
// BENCH_obs.json profile record, and the telemetry endpoints. Bump it
// when a field changes meaning. v4 adds the run-ledger counters
// (ledger-records/-commits/-bytes) and the state_digest field in the
// structured BENCH records. v5 adds the streaming shard-pipeline
// counters (stream-overlap-ns/-blocked-ns, pos-/force-raw/wire-bytes)
// and the overlap A/B + compression columns in BENCH_shards.json.
const SchemaVersion = "anton-obs/v5"

// The step tracer records per-step, per-phase spans from the engine plus
// simulated per-node lanes derived from the machine performance model and
// the Comm() traffic accounting, into a bounded ring exportable as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Virtual time. Wall clocks are nondeterministic, so span timestamps use
// a deterministic step-indexed virtual clock instead: every step owns a
// fixed window of StepVirtualNs virtual nanoseconds, and each phase is
// assigned a fixed slot inside the window (by default proportional to the
// machine model's predicted phase shares, so the timeline's shape mirrors
// the paper's Table 2 pipeline). Two runs of the same configuration
// produce bitwise-identical timestamps; the measured wall time of each
// span rides along in its args instead of distorting the layout.
//
// Lanes. pid/tid assignment is stable: the engine is pid 1 with a step
// lane (tid 0), a phase lane (tid 1) and one lane per force worker
// (tid 10+w); each simulated node n is pid 100+n with a compute lane
// (tid 0) and a comm lane (tid 1) replaying the model-predicted per-node
// schedule every step.
//
// Like the Recorder, a Tracer is owned by the engine's coordinating
// goroutine and is strictly read-only with respect to dynamics state.

// StepVirtualNs is the virtual-time window of one step (1 virtual ms, so
// exported timestamps advance 1000 us per step).
const StepVirtualNs = 1_000_000

// Stable pid/tid lane assignment of the exported trace.
const (
	PidEngine   = 1 // the engine process lane group
	PidNodeBase = 100

	TidStep       = 0
	TidPhases     = 1
	TidWorkerBase = 10

	TidNodeCompute = 0
	TidNodeComm    = 1
)

// Span is one recorded trace span. TS and Dur are virtual nanoseconds
// (deterministic); WallNs is the measured wall time when the span came
// from a live engine phase (0 for model-derived node spans, where ModelNs
// carries the analytic estimate instead).
type Span struct {
	Name    string
	Pid     int32
	Tid     int32
	TS      int64
	Dur     int64
	Step    int64
	WallNs  int64
	Calls   int32
	ModelNs int64
}

// NodeSpan is one entry of the per-step simulated-node schedule template:
// a span replayed for node Node every step at the given offset inside the
// step window.
type NodeSpan struct {
	Name     string
	Node     int32
	Tid      int32
	OffsetNs int64
	DurNs    int64
	ModelNs  int64 // unscaled model estimate, ns
}

// Tracer is the bounded-ring step tracer. The zero value is not usable;
// call NewTracer.
type Tracer struct {
	start time.Time

	ring    []Span
	head    int // next write index
	count   int
	dropped int64

	offsets [NumPhases]int64
	slots   [NumPhases]int64

	// Per-step accumulation, flushed by StepDone.
	cur      [NumPhases]int64
	curCalls [NumPhases]int32
	workerNs []int64
	workerFl []int64
	maxWork  int

	nodeLanes   bool
	nodeEvery   int64
	nodeFresh   int64 // step of last schedule refresh (-1 = never)
	nodeNames   []string
	schedule    []NodeSpan
	lastStep    int64
	flushedStep int64
}

// NewTracer builds a tracer with the given ring capacity (minimum 64)
// and a uniform phase layout; SetStepLayout replaces the layout.
func NewTracer(capacity int) *Tracer {
	if capacity < 64 {
		capacity = 64
	}
	t := &Tracer{
		start:     time.Now(),
		ring:      make([]Span, capacity),
		nodeFresh: -1,
	}
	var uniform [NumPhases]float64
	for p := Phase(0); p < NumPhases; p++ {
		if wallPhase(p) {
			uniform[p] = 1
		}
	}
	t.SetStepLayout(uniform)
	return t
}

// Now returns the tracer's monotonic wall clock in nanoseconds (used by
// the engine to measure span wall times when no Recorder is attached).
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// Dropped returns the number of spans evicted from the ring.
func (t *Tracer) Dropped() int64 { return t.dropped }

// SetStepLayout installs the per-phase virtual slot widths from relative
// weights: each wall phase receives weight/total of the step window, laid
// out in canonical phase order. Zero or negative weights collapse the
// slot; the nested PhasePairPPIP shares PhasePairMatch's slot (worker
// lanes render inside it).
func (t *Tracer) SetStepLayout(weights [NumPhases]float64) {
	total := 0.0
	for p := Phase(0); p < NumPhases; p++ {
		if wallPhase(p) && weights[p] > 0 {
			total += weights[p]
		}
	}
	if total <= 0 {
		total = 1
	}
	var off int64
	for p := Phase(0); p < NumPhases; p++ {
		if !wallPhase(p) {
			continue
		}
		w := weights[p]
		if w < 0 {
			w = 0
		}
		t.offsets[p] = off
		t.slots[p] = int64(w / total * StepVirtualNs)
		off += t.slots[p]
	}
	t.offsets[PhasePairPPIP] = t.offsets[PhasePairMatch]
	t.slots[PhasePairPPIP] = t.slots[PhasePairMatch]
}

// EnableNodeLanes turns on the simulated per-node lanes. refreshEvery is
// the minimum number of steps between schedule refreshes (0 = refresh at
// every migration).
func (t *Tracer) EnableNodeLanes(refreshEvery int) {
	t.nodeLanes = true
	t.nodeEvery = int64(refreshEvery)
}

// NodeLanesEnabled reports whether node lanes are on.
func (t *Tracer) NodeLanesEnabled() bool { return t.nodeLanes }

// NeedNodeRefresh reports whether the node schedule should be recomputed
// at the given step (rate-limited by EnableNodeLanes's refreshEvery).
func (t *Tracer) NeedNodeRefresh(step int64) bool {
	if !t.nodeLanes {
		return false
	}
	if t.nodeFresh < 0 {
		return true
	}
	return step-t.nodeFresh >= t.nodeEvery
}

// SetNodeSchedule installs the per-step simulated-node span template and
// the node display names (index = node id).
func (t *Tracer) SetNodeSchedule(names []string, spans []NodeSpan, step int64) {
	t.nodeNames = names
	t.schedule = spans
	t.nodeFresh = step
}

// AddPhase accumulates one timed call into the current step (same call
// convention as Recorder.AddPhase; the engine feeds both).
func (t *Tracer) AddPhase(p Phase, ns int64) {
	t.cur[p] += ns
	t.curCalls[p]++
}

// AddWorker accumulates one worker's per-step PPIP datapath time and
// flush count (rendered as a span on the worker's lane).
func (t *Tracer) AddWorker(w int, ppipNs, flushes int64) {
	for len(t.workerNs) <= w {
		t.workerNs = append(t.workerNs, 0)
		t.workerFl = append(t.workerFl, 0)
	}
	t.workerNs[w] += ppipNs
	t.workerFl[w] += flushes
	if w+1 > t.maxWork {
		t.maxWork = w + 1
	}
}

// push appends a span to the ring, evicting the oldest on overflow.
func (t *Tracer) push(s Span) {
	t.ring[t.head] = s
	t.head = (t.head + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	} else {
		t.dropped++
	}
}

// StepDone flushes the accumulated phase and worker times of completed
// step `step` (1-based) as spans in the step's virtual window, replays
// the simulated-node schedule, and resets the per-step accumulators.
func (t *Tracer) StepDone(step int64) {
	base := (step - 1) * StepVirtualNs
	if base < 0 {
		base = 0
	}
	var stepWall int64
	for p := Phase(0); p < NumPhases; p++ {
		if !wallPhase(p) {
			continue
		}
		stepWall += t.cur[p]
		if t.curCalls[p] == 0 {
			continue
		}
		t.push(Span{
			Name:   p.String(),
			Pid:    PidEngine,
			Tid:    TidPhases,
			TS:     base + t.offsets[p],
			Dur:    t.slots[p],
			Step:   step,
			WallNs: t.cur[p],
			Calls:  t.curCalls[p],
		})
		t.cur[p] = 0
		t.curCalls[p] = 0
	}
	t.cur[PhasePairPPIP] = 0
	t.curCalls[PhasePairPPIP] = 0
	t.push(Span{
		Name:   "step",
		Pid:    PidEngine,
		Tid:    TidStep,
		TS:     base,
		Dur:    StepVirtualNs,
		Step:   step,
		WallNs: stepWall,
		Calls:  1,
	})
	for w := 0; w < t.maxWork; w++ {
		if t.workerFl[w] > 0 {
			t.push(Span{
				Name:   "ppip-batches",
				Pid:    PidEngine,
				Tid:    TidWorkerBase + int32(w),
				TS:     base + t.offsets[PhasePairPPIP],
				Dur:    t.slots[PhasePairPPIP],
				Step:   step,
				WallNs: t.workerNs[w],
				Calls:  int32(t.workerFl[w]),
			})
		}
		t.workerNs[w] = 0
		t.workerFl[w] = 0
	}
	for _, ns := range t.schedule {
		t.push(Span{
			Name:    ns.Name,
			Pid:     PidNodeBase + ns.Node,
			Tid:     ns.Tid,
			TS:      base + ns.OffsetNs,
			Dur:     ns.DurNs,
			Step:    step,
			ModelNs: ns.ModelNs,
		})
	}
	t.lastStep = step
	t.flushedStep = step
}

// Spans returns the ring contents oldest-first (copied).
func (t *Tracer) Spans() []Span {
	out := make([]Span, 0, t.count)
	start := t.head - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// traceEvent is the Chrome trace-event wire form.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object trace container.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// ExportJSON renders the ring as a Chrome trace-event JSON document:
// metadata events naming every process and thread lane, then the spans
// as complete ("X") events sorted by timestamp (monotonic non-negative
// ts, microseconds). The otherData block carries SchemaVersion.
func (t *Tracer) ExportJSON() ([]byte, error) {
	spans := t.Spans()
	sort.SliceStable(spans, func(a, b int) bool {
		if spans[a].TS != spans[b].TS {
			return spans[a].TS < spans[b].TS
		}
		if spans[a].Pid != spans[b].Pid {
			return spans[a].Pid < spans[b].Pid
		}
		return spans[a].Tid < spans[b].Tid
	})

	f := traceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"schemaVersion": SchemaVersion,
			"generator":     "anton step tracer",
			"virtualStepUs": fmt.Sprintf("%d", StepVirtualNs/1000),
		},
	}
	meta := func(pid, tid int64, kind, name string) {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(PidEngine, 0, "process_name", "engine")
	meta(PidEngine, TidStep, "thread_name", "steps")
	meta(PidEngine, TidPhases, "thread_name", "phases")
	for w := 0; w < t.maxWorkerSeen(spans); w++ {
		meta(PidEngine, int64(TidWorkerBase+w), "thread_name", fmt.Sprintf("worker %d", w))
	}
	for i, name := range t.nodeNames {
		meta(int64(PidNodeBase+i), 0, "process_name", name)
		meta(int64(PidNodeBase+i), TidNodeCompute, "thread_name", "compute")
		meta(int64(PidNodeBase+i), TidNodeComm, "thread_name", "comm")
	}
	for _, s := range spans {
		args := map[string]any{"step": s.Step}
		if s.WallNs > 0 {
			args["wall_ns"] = s.WallNs
		}
		if s.Calls > 0 {
			args["calls"] = s.Calls
		}
		if s.ModelNs > 0 {
			args["model_ns"] = s.ModelNs
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name,
			Ph:   "X",
			Cat:  "sim",
			TS:   float64(s.TS) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  int64(s.Pid),
			Tid:  int64(s.Tid),
			Args: args,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// maxWorkerSeen returns the number of worker lanes present in spans (the
// tracer's running maximum survives ring eviction).
func (t *Tracer) maxWorkerSeen(spans []Span) int {
	max := t.maxWork
	for _, s := range spans {
		if s.Pid == PidEngine && s.Tid >= TidWorkerBase {
			if w := int(s.Tid-TidWorkerBase) + 1; w > max {
				max = w
			}
		}
	}
	return max
}

// Export writes the Chrome trace-event JSON document to w.
func (t *Tracer) Export(w io.Writer) error {
	b, err := t.ExportJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
