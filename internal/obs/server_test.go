package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anton/internal/obs/health"
)

func TestSeriesRing(t *testing.T) {
	s := NewSeries(16)
	if _, ok := s.Latest(); ok {
		t.Fatal("empty series reported a latest sample")
	}
	for i := int64(1); i <= 40; i++ {
		s.Append(StepSample{Step: i, Temperature: float64(i)})
	}
	if s.Total() != 40 {
		t.Errorf("total %d, want 40", s.Total())
	}
	snap := s.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("retained %d samples, want 16", len(snap))
	}
	if snap[0].Step != 25 || snap[15].Step != 40 {
		t.Errorf("ring window [%d,%d], want [25,40]", snap[0].Step, snap[15].Step)
	}
	if last, ok := s.Latest(); !ok || last.Step != 40 {
		t.Errorf("latest = %+v", last)
	}
}

func TestTelemetryEndpoints(t *testing.T) {
	tel := NewTelemetry()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	// Before anything is published: metrics has only build info, healthz
	// reports unknown, trace is a 404.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "anton_build_info") {
		t.Fatalf("/metrics empty-state: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"unknown"`) {
		t.Fatalf("/healthz empty-state: %d %q", code, body)
	}
	if code, _ := get("/trace"); code != 404 {
		t.Fatalf("/trace with no publication: %d, want 404", code)
	}

	// Publish everything.
	rec := NewRecorder()
	rec.AddPhase(PhaseIntegration, 5_000_000)
	rec.StepDone()
	tel.PublishSnapshot(rec.Snapshot())
	tel.PublishSample(StepSample{Step: 7, Temperature: 301.5, TotalEnergy: -950})

	reg := health.New(health.DefaultConfig())
	reg.Eval(health.Sample{Step: 1, HeadroomBits: 1, HaveHeadroom: true}) // latch critical
	tel.PublishHealth(reg.Status(SchemaVersion))

	tr := NewTracer(64)
	tr.AddPhase(PhaseIntegration, 100)
	tr.StepDone(1)
	if err := tel.PublishTrace(tr); err != nil {
		t.Fatal(err)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"anton_steps_total 1",
		`anton_phase_seconds_total{phase="integration"} 0.005`,
		"anton_step 7",
		"anton_temperature_kelvin 301.5",
		`anton_energy_kcal{component="total"} -950`,
		"anton_health_level 2",
		`anton_health_monitor_level{monitor="overflow-headroom"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Critical latch makes /healthz a 503 with parseable JSON.
	code, body = get("/healthz")
	if code != 503 {
		t.Fatalf("/healthz with critical latch: %d, want 503", code)
	}
	var st health.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}

	// Trace round-trips.
	code, body = get("/trace")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("/trace missing traceEvents")
	}
}

func TestPromEscape(t *testing.T) {
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("promEscape = %q", got)
	}
}

// TestTelemetryShutdown: Serve blocks until Shutdown, which returns the
// blocked call as nil (not http.ErrServerClosed) and closes the
// listener. Shutdown on a telemetry surface that never served is a
// no-op.
func TestTelemetryShutdown(t *testing.T) {
	if err := NewTelemetry().Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown with no server: %v", err)
	}

	tel := NewTelemetry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- tel.Serve(ln) }()

	// The surface is live: a scrape answers before shutdown.
	url := "http://" + ln.Addr().String() + "/metrics"
	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tel.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
