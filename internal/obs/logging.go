package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the structured logger shared by the cmd tools:
// format "json" emits one JSON object per line (machine ingestion),
// anything else the human-readable text handler. verbose lowers the
// level to debug.
func NewLogger(w io.Writer, format string, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}
