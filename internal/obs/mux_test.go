package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestTelemetryLifecycle: the orderings a multi-tenant daemon produces —
// Shutdown before any Serve, Serve after Shutdown, double and concurrent
// Shutdown — must all be safe, deterministic and leak-free. Run under
// -race (scripts/verify.sh gates on it).
func TestTelemetryLifecycle(t *testing.T) {
	ctx := context.Background()

	t.Run("shutdown-before-serve", func(t *testing.T) {
		tel := NewTelemetry()
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown before serve: %v", err)
		}
		// A later ListenAndServe must not bind a listener nothing will
		// ever stop: it returns nil promptly instead of blocking.
		done := make(chan error, 1)
		go func() { done <- tel.ListenAndServe("127.0.0.1:0") }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("ListenAndServe after shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ListenAndServe after shutdown did not return")
		}
	})

	t.Run("serve-after-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		if err := tel.Serve(ln); err != nil {
			t.Fatalf("Serve after shutdown: %v", err)
		}
		// The orphaned listener is closed, not leaked.
		if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			t.Fatal("listener still accepting after Serve-after-Shutdown")
		}
	})

	t.Run("double-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- tel.Serve(ln) }()
		waitTelemetryUp(t, ln.Addr().String())
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("first shutdown: %v", err)
		}
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("second shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Fatalf("Serve returned %v after shutdown, want nil", err)
		}
	})

	t.Run("concurrent-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- tel.Serve(ln) }()
		waitTelemetryUp(t, ln.Addr().String())
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tel.Shutdown(ctx); err != nil {
					t.Errorf("concurrent shutdown: %v", err)
				}
			}()
		}
		wg.Wait()
		if err := <-served; err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	})
}

func waitTelemetryUp(t *testing.T, addr string) {
	t.Helper()
	url := "http://" + addr + "/healthz"
	for i := 0; ; i++ {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		if i > 200 {
			t.Fatalf("telemetry never came up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTelemetrySet: keyed registration, routing, and 404s for unknown
// keys/endpoints.
func TestTelemetrySet(t *testing.T) {
	set := NewTelemetrySet()
	if got := set.Get("a"); got != nil {
		t.Fatalf("Get on empty set = %v, want nil", got)
	}
	ta := set.Acquire("a")
	if ta == nil || set.Acquire("a") != ta {
		t.Fatal("Acquire is not stable per key")
	}
	set.Acquire("b")
	if keys := set.Keys(); !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("Keys = %v, want [a b]", keys)
	}

	ta.PublishSample(StepSample{Step: 42, Temperature: 300})

	get := func(key, ep string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/"+ep, nil)
		set.ServeEndpoint(w, r, key, ep)
		return w
	}
	if w := get("a", "metrics"); w.Code != http.StatusOK {
		t.Fatalf("metrics for a: %d", w.Code)
	}
	if w := get("a", "healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz for a: %d", w.Code)
	}
	if w := get("a", "trace"); w.Code != http.StatusNotFound {
		t.Fatalf("trace with no publish: %d, want 404", w.Code)
	}
	if w := get("zzz", "metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", w.Code)
	}
	if w := get("a", "nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown endpoint: %d, want 404", w.Code)
	}

	set.Drop("a")
	if w := get("a", "metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("dropped key still routed: %d", w.Code)
	}
	set.Drop("a") // idempotent
}
