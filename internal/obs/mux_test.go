package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestTelemetryLifecycle: the orderings a multi-tenant daemon produces —
// Shutdown before any Serve, Serve after Shutdown, double and concurrent
// Shutdown — must all be safe, deterministic and leak-free. Run under
// -race (scripts/verify.sh gates on it).
func TestTelemetryLifecycle(t *testing.T) {
	ctx := context.Background()

	t.Run("shutdown-before-serve", func(t *testing.T) {
		tel := NewTelemetry()
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown before serve: %v", err)
		}
		// A later ListenAndServe must not bind a listener nothing will
		// ever stop: it returns nil promptly instead of blocking.
		done := make(chan error, 1)
		go func() { done <- tel.ListenAndServe("127.0.0.1:0") }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("ListenAndServe after shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ListenAndServe after shutdown did not return")
		}
	})

	t.Run("serve-after-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		if err := tel.Serve(ln); err != nil {
			t.Fatalf("Serve after shutdown: %v", err)
		}
		// The orphaned listener is closed, not leaked.
		if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
			t.Fatal("listener still accepting after Serve-after-Shutdown")
		}
	})

	t.Run("double-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- tel.Serve(ln) }()
		waitTelemetryUp(t, ln.Addr().String())
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("first shutdown: %v", err)
		}
		if err := tel.Shutdown(ctx); err != nil {
			t.Fatalf("second shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Fatalf("Serve returned %v after shutdown, want nil", err)
		}
	})

	t.Run("concurrent-shutdown", func(t *testing.T) {
		tel := NewTelemetry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func() { served <- tel.Serve(ln) }()
		waitTelemetryUp(t, ln.Addr().String())
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tel.Shutdown(ctx); err != nil {
					t.Errorf("concurrent shutdown: %v", err)
				}
			}()
		}
		wg.Wait()
		if err := <-served; err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	})
}

func waitTelemetryUp(t *testing.T, addr string) {
	t.Helper()
	url := "http://" + addr + "/healthz"
	for i := 0; ; i++ {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		if i > 200 {
			t.Fatalf("telemetry never came up at %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTelemetrySet: keyed registration, routing, and 404s for unknown
// keys/endpoints.
func TestTelemetrySet(t *testing.T) {
	set := NewTelemetrySet()
	if got := set.Get("a"); got != nil {
		t.Fatalf("Get on empty set = %v, want nil", got)
	}
	ta := set.Acquire("a")
	if ta == nil || set.Acquire("a") != ta {
		t.Fatal("Acquire is not stable per key")
	}
	set.Acquire("b")
	if keys := set.Keys(); !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("Keys = %v, want [a b]", keys)
	}

	ta.PublishSample(StepSample{Step: 42, Temperature: 300})

	get := func(key, ep string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/"+ep, nil)
		set.ServeEndpoint(w, r, key, ep)
		return w
	}
	if w := get("a", "metrics"); w.Code != http.StatusOK {
		t.Fatalf("metrics for a: %d", w.Code)
	}
	if w := get("a", "healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz for a: %d", w.Code)
	}
	if w := get("a", "trace"); w.Code != http.StatusNotFound {
		t.Fatalf("trace with no publish: %d, want 404", w.Code)
	}
	if w := get("zzz", "metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", w.Code)
	}
	if w := get("a", "nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown endpoint: %d, want 404", w.Code)
	}

	set.Drop("a")
	if w := get("a", "metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("dropped key still routed: %d", w.Code)
	}
	set.Drop("a") // idempotent
}

// TestTelemetrySetDropRace: Drop racing Acquire, publishes and
// ServeEndpoint across many keys must be data-race free (the verify.sh
// obs gate runs this under -race). Requests resolve to either the live
// surface or a 404 — never a torn read.
func TestTelemetrySetDropRace(t *testing.T) {
	set := NewTelemetrySet()
	keys := []string{"job-1", "job-2", "job-3", "job-4"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for _, k := range keys {
		wg.Add(2)
		// Publisher: acquire and publish in a loop (a worker's life).
		go func(k string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tel := set.Acquire(k)
				tel.PublishSample(StepSample{Step: 1})
			}
		}(k)
		// Reaper: drop the same key concurrently.
		go func(k string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				set.Drop(k)
			}
		}(k)
	}
	// Scrapers: route requests across all keys while the churn runs.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					w := httptest.NewRecorder()
					r := httptest.NewRequest("GET", "/metrics", nil)
					set.ServeEndpoint(w, r, k, "metrics")
					if w.Code != http.StatusOK && w.Code != http.StatusNotFound {
						t.Errorf("racing scrape of %s: %d", k, w.Code)
						return
					}
				}
				set.Keys()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTelemetrySetDropServes404: after a drop, every per-job endpoint
// answers 404 (not a stale surface), and re-acquiring the key starts a
// fresh surface with none of the old publishes.
func TestTelemetrySetDropServes404(t *testing.T) {
	set := NewTelemetrySet()
	tel := set.Acquire("job-9")
	tel.PublishSample(StepSample{Step: 7, Temperature: 300})

	get := func(ep string) int {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/"+ep, nil)
		set.ServeEndpoint(w, r, "job-9", ep)
		return w.Code
	}
	for _, ep := range []string{"metrics", "healthz"} {
		if code := get(ep); code != http.StatusOK {
			t.Fatalf("%s before drop: %d", ep, code)
		}
	}
	set.Drop("job-9")
	for _, ep := range []string{"metrics", "healthz", "trace"} {
		if code := get(ep); code != http.StatusNotFound {
			t.Fatalf("%s after drop: %d, want 404", ep, code)
		}
	}
	// A fresh Acquire under the same key is a new, empty surface: its
	// healthz has no published health yet, so it must not leak the old
	// surface's state.
	if set.Acquire("job-9") == tel {
		t.Fatal("Acquire after Drop returned the dropped surface")
	}
}
