// Package health is the simulation health-watchdog subsystem: a registry
// of invariant monitors evaluated on a fixed cadence against samples of
// the running engine's state, emitting structured, severity-ranked alert
// events with hysteresis. The monitors watch the invariants that certify
// a long run is not silently wrong — the paper's energy-conservation,
// reversibility and parallel-invariance story turned into live checks:
//
//   - relative total-energy drift against the run's baseline (NVE only —
//     a thermostatted run exchanges energy by design);
//   - net-momentum conservation (per-atom drift from the baseline);
//   - fixed-point overflow headroom of the force accumulators, in bits;
//   - migration-slack margin: measured inter-migration drift as a
//     fraction of the engine's residency slack.
//
// Hysteresis: each monitor latches its worst severity and fires exactly
// one alert per upward threshold crossing; it re-arms only after the
// value retreats past threshold*Rearm, so a value oscillating around a
// threshold cannot flood the alert ring.
//
// The package is engine-agnostic: it consumes plain-float Samples, so it
// has no dependency on the core packages and tests can inject synthetic
// failures.
package health

import (
	"encoding/json"
	"fmt"
	"math"
)

// Severity ranks an alert or a monitor's latched state.
type Severity int

// Severity levels, ordered.
const (
	SevOK Severity = iota
	SevWarn
	SevCrit
)

// String returns the stable lowercase name.
func (s Severity) String() string {
	switch s {
	case SevOK:
		return "ok"
	case SevWarn:
		return "warn"
	case SevCrit:
		return "critical"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its stable name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the stable name back (round-trip for consumers of
// the /healthz document).
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "ok":
		*s = SevOK
	case "warn":
		*s = SevWarn
	case "critical":
		*s = SevCrit
	default:
		return fmt.Errorf("health: unknown severity %q", name)
	}
	return nil
}

// Alert is one structured watchdog event.
type Alert struct {
	Step      int64    `json:"step"`
	Monitor   string   `json:"monitor"`
	Severity  Severity `json:"severity"`
	Value     float64  `json:"value"`
	Threshold float64  `json:"threshold"`
	Message   string   `json:"message"`
}

// Sample is one observation of the engine's invariants. The Have* flags
// let a caller omit quantities it cannot provide (e.g. energy drift is
// meaningless under a thermostat); monitors skip absent values.
type Sample struct {
	Step int64

	TotalEnergy float64 // conserved quantity, kcal/mol
	HaveEnergy  bool

	MomentumPerAtom float64 // |sum m v| / N, amu Å/fs
	HaveMomentum    bool

	HeadroomBits float64 // log2 headroom of the widest force accumulator
	HaveHeadroom bool

	Drift     float64 // max single-atom drift since last migration, Å
	Slack     float64 // the engine's residency slack, Å
	HaveDrift bool

	RetryRate float64 // transport retransmits per send since the last sample
	HaveRetry bool
}

// Monitor is one watched invariant with warn/crit thresholds and latched
// hysteresis state. Value extraction lives in the closure so the monitor
// set is data-driven and extensible.
type Monitor struct {
	Name      string
	Unit      string
	Warn      float64
	Crit      float64
	HigherBad bool    // true: alert when value rises past thresholds
	Rearm     float64 // re-arm fraction in (0,1]; see package comment

	value func(*Registry, Sample) (float64, bool)

	level Severity
	last  float64
	seen  bool
}

// severityOf classifies a value against the firing thresholds.
func (m *Monitor) severityOf(v float64) Severity {
	if m.HigherBad {
		switch {
		case v >= m.Crit:
			return SevCrit
		case v >= m.Warn:
			return SevWarn
		}
		return SevOK
	}
	switch {
	case v <= m.Crit:
		return SevCrit
	case v <= m.Warn:
		return SevWarn
	}
	return SevOK
}

// releaseSeverityOf classifies a value against the re-arm thresholds
// (threshold*Rearm for rising monitors, threshold/Rearm for falling
// ones): the level a latched monitor may relax to.
func (m *Monitor) releaseSeverityOf(v float64) Severity {
	r := m.Rearm
	if r <= 0 || r > 1 {
		r = 1
	}
	if m.HigherBad {
		switch {
		case v >= m.Crit*r:
			return SevCrit
		case v >= m.Warn*r:
			return SevWarn
		}
		return SevOK
	}
	switch {
	case v <= m.Crit/r:
		return SevCrit
	case v <= m.Warn/r:
		return SevWarn
	}
	return SevOK
}

// eval updates the hysteresis state for one sample value and returns the
// fired alert, if any.
func (m *Monitor) eval(step int64, v float64) (Alert, bool) {
	m.last = v
	m.seen = true
	target := m.severityOf(v)
	if target > m.level {
		m.level = target
		thr := m.Warn
		if target == SevCrit {
			thr = m.Crit
		}
		return Alert{
			Step:      step,
			Monitor:   m.Name,
			Severity:  target,
			Value:     v,
			Threshold: thr,
			Message: fmt.Sprintf("%s %s: %.4g %s crossed %.4g",
				m.Name, target, v, m.Unit, thr),
		}, true
	}
	if rel := m.releaseSeverityOf(v); rel < m.level {
		m.level = rel // silent re-arm
	}
	return Alert{}, false
}

// Config tunes the default monitor set.
type Config struct {
	// EnergyWarn/Crit are relative total-energy drift thresholds
	// (|E-E0| / max(1,|E0|)).
	EnergyWarn, EnergyCrit float64
	// DisableEnergy drops the energy monitor (thermostatted runs).
	DisableEnergy bool

	// MomentumWarn/Crit bound the per-atom net-momentum drift from the
	// baseline, amu Å/fs.
	MomentumWarn, MomentumCrit float64

	// HeadroomWarnBits/CritBits are minimum acceptable overflow headroom
	// of the force accumulators, in bits (falling monitor).
	HeadroomWarnBits, HeadroomCritBits float64

	// SlackWarn/Crit bound the drift/slack ratio: 1.0 means an atom used
	// the entire residency slack between migrations.
	SlackWarn, SlackCrit float64

	// RetryWarn/Crit bound the transport retransmit-per-send ratio between
	// samples. A quiet link sits near zero; a retry storm (dropping or
	// saturated transport retransmitting most traffic) climbs past 1.
	RetryWarn, RetryCrit float64

	// Rearm is the hysteresis re-arm fraction (default 0.8).
	Rearm float64

	// MaxAlerts bounds the alert ring (default 256).
	MaxAlerts int
}

// DefaultConfig returns production thresholds: generous enough that a
// healthy fixed-point NVE run stays silent indefinitely, tight enough
// that a drifting invariant fires long before the trajectory is garbage.
func DefaultConfig() Config {
	return Config{
		EnergyWarn:       2e-3,
		EnergyCrit:       2e-2,
		MomentumWarn:     1e-4,
		MomentumCrit:     1e-2,
		HeadroomWarnBits: 8,
		HeadroomCritBits: 2,
		SlackWarn:        0.6,
		SlackCrit:        1.0,
		RetryWarn:        0.5,
		RetryCrit:        2.0,
		Rearm:            0.8,
		MaxAlerts:        256,
	}
}

// Registry evaluates a monitor set against samples and keeps a bounded
// ring of fired alerts. Not safe for concurrent use; the owner publishes
// Status() copies to concurrent readers.
type Registry struct {
	monitors []*Monitor

	alerts    []Alert // ring
	alertHead int
	alertN    int
	fired     [SevCrit + 1]int64

	baseE     float64
	haveBaseE bool
	baseP     float64
	haveBaseP bool
	evals     int64
}

// New builds a registry with the standard monitor set for cfg.
func New(cfg Config) *Registry {
	def := DefaultConfig()
	if cfg.Rearm == 0 {
		cfg.Rearm = def.Rearm
	}
	if cfg.MaxAlerts == 0 {
		cfg.MaxAlerts = def.MaxAlerts
	}
	if cfg.RetryWarn == 0 {
		cfg.RetryWarn = def.RetryWarn
	}
	if cfg.RetryCrit == 0 {
		cfg.RetryCrit = def.RetryCrit
	}
	r := &Registry{alerts: make([]Alert, cfg.MaxAlerts)}
	if !cfg.DisableEnergy {
		r.AddMonitor(&Monitor{
			Name: "energy-drift", Unit: "rel",
			Warn: cfg.EnergyWarn, Crit: cfg.EnergyCrit,
			HigherBad: true, Rearm: cfg.Rearm,
			value: func(r *Registry, s Sample) (float64, bool) {
				if !s.HaveEnergy {
					return 0, false
				}
				if !r.haveBaseE {
					r.baseE = s.TotalEnergy
					r.haveBaseE = true
				}
				return math.Abs(s.TotalEnergy-r.baseE) / math.Max(1, math.Abs(r.baseE)), true
			},
		})
	}
	r.AddMonitor(&Monitor{
		Name: "net-momentum", Unit: "amu·Å/fs per atom",
		Warn: cfg.MomentumWarn, Crit: cfg.MomentumCrit,
		HigherBad: true, Rearm: cfg.Rearm,
		value: func(r *Registry, s Sample) (float64, bool) {
			if !s.HaveMomentum {
				return 0, false
			}
			if !r.haveBaseP {
				r.baseP = s.MomentumPerAtom
				r.haveBaseP = true
			}
			return math.Abs(s.MomentumPerAtom - r.baseP), true
		},
	})
	r.AddMonitor(&Monitor{
		Name: "overflow-headroom", Unit: "bits",
		Warn: cfg.HeadroomWarnBits, Crit: cfg.HeadroomCritBits,
		HigherBad: false, Rearm: cfg.Rearm,
		value: func(_ *Registry, s Sample) (float64, bool) {
			return s.HeadroomBits, s.HaveHeadroom
		},
	})
	r.AddMonitor(&Monitor{
		Name: "migration-slack", Unit: "drift/slack",
		Warn: cfg.SlackWarn, Crit: cfg.SlackCrit,
		HigherBad: true, Rearm: cfg.Rearm,
		value: func(_ *Registry, s Sample) (float64, bool) {
			if !s.HaveDrift || s.Slack <= 0 {
				return 0, false
			}
			return s.Drift / s.Slack, true
		},
	})
	r.AddMonitor(&Monitor{
		Name: "retry-storm", Unit: "retransmits/send",
		Warn: cfg.RetryWarn, Crit: cfg.RetryCrit,
		HigherBad: true, Rearm: cfg.Rearm,
		value: func(_ *Registry, s Sample) (float64, bool) {
			return s.RetryRate, s.HaveRetry
		},
	})
	return r
}

// AddMonitor appends a custom monitor (tests and extensions). A monitor
// without a value closure reads nothing and never fires.
func (r *Registry) AddMonitor(m *Monitor) { r.monitors = append(r.monitors, m) }

// Eval evaluates every monitor against one sample and returns the alerts
// fired by this sample, ranked most severe first (ties keep monitor
// registration order).
func (r *Registry) Eval(s Sample) []Alert {
	r.evals++
	var fired []Alert
	for _, m := range r.monitors {
		if m.value == nil {
			continue
		}
		v, ok := m.value(r, s)
		if !ok {
			continue
		}
		if a, hit := m.eval(s.Step, v); hit {
			fired = append(fired, a)
		}
	}
	// Severity-ranked: critical alerts lead. Insertion sort keeps the
	// (tiny) slice stable without allocations.
	for i := 1; i < len(fired); i++ {
		for j := i; j > 0 && fired[j].Severity > fired[j-1].Severity; j-- {
			fired[j], fired[j-1] = fired[j-1], fired[j]
		}
	}
	for _, a := range fired {
		r.pushAlert(a)
	}
	return fired
}

func (r *Registry) pushAlert(a Alert) {
	r.alerts[r.alertHead] = a
	r.alertHead = (r.alertHead + 1) % len(r.alerts)
	if r.alertN < len(r.alerts) {
		r.alertN++
	}
	r.fired[a.Severity]++
}

// Alerts returns the retained alerts oldest-first (copied).
func (r *Registry) Alerts() []Alert {
	out := make([]Alert, 0, r.alertN)
	start := r.alertHead - r.alertN
	if start < 0 {
		start += len(r.alerts)
	}
	for i := 0; i < r.alertN; i++ {
		out = append(out, r.alerts[(start+i)%len(r.alerts)])
	}
	return out
}

// Fired returns how many alerts of the given severity have fired over
// the registry's lifetime (unaffected by ring eviction).
func (r *Registry) Fired(s Severity) int64 {
	if s < 0 || int(s) >= len(r.fired) {
		return 0
	}
	return r.fired[s]
}

// Worst returns the highest currently-latched monitor severity.
func (r *Registry) Worst() Severity {
	w := SevOK
	for _, m := range r.monitors {
		if m.level > w {
			w = m.level
		}
	}
	return w
}

// MonitorStatus is one monitor's rendered state.
type MonitorStatus struct {
	Name  string   `json:"name"`
	Unit  string   `json:"unit"`
	Level Severity `json:"level"`
	Value float64  `json:"value"`
	Warn  float64  `json:"warn"`
	Crit  float64  `json:"crit"`
	Seen  bool     `json:"seen"`
}

// Status is the registry's full rendered state — the /healthz document.
type Status struct {
	Schema   string          `json:"schema"`
	Worst    Severity        `json:"status"`
	Evals    int64           `json:"evals"`
	Monitors []MonitorStatus `json:"monitors"`
	Alerts   []Alert         `json:"alerts"`
}

// Status renders the registry (a value copy, safe to publish across
// goroutines).
func (r *Registry) Status(schema string) Status {
	st := Status{Schema: schema, Worst: r.Worst(), Evals: r.evals}
	for _, m := range r.monitors {
		st.Monitors = append(st.Monitors, MonitorStatus{
			Name: m.Name, Unit: m.Unit, Level: m.level,
			Value: m.last, Warn: m.Warn, Crit: m.Crit, Seen: m.seen,
		})
	}
	st.Alerts = r.Alerts()
	return st
}
