package health

import (
	"encoding/json"
	"testing"
)

// healthySample is a sample every default monitor classifies as OK.
func healthySample(step int64, e float64) Sample {
	return Sample{
		Step:            step,
		TotalEnergy:     e,
		HaveEnergy:      true,
		MomentumPerAtom: 0,
		HaveMomentum:    true,
		HeadroomBits:    30,
		HaveHeadroom:    true,
		Drift:           0.1,
		Slack:           1.0,
		HaveDrift:       true,
	}
}

func TestHealthySamplesStaySilent(t *testing.T) {
	r := New(DefaultConfig())
	for s := int64(1); s <= 200; s++ {
		if alerts := r.Eval(healthySample(s, -1000.0)); len(alerts) != 0 {
			t.Fatalf("step %d: healthy sample fired %v", s, alerts)
		}
	}
	if r.Worst() != SevOK {
		t.Errorf("worst latched severity %v, want ok", r.Worst())
	}
	if r.Fired(SevWarn)+r.Fired(SevCrit) != 0 {
		t.Error("alert counters nonzero on a healthy run")
	}
}

// TestFiresExactlyOncePerCrossing: a monitor that crosses its warn
// threshold and stays above it fires exactly one alert, no matter how
// many samples arrive while the value is elevated.
func TestFiresExactlyOncePerCrossing(t *testing.T) {
	cfg := DefaultConfig()
	r := New(cfg)
	base := -1000.0
	r.Eval(healthySample(1, base)) // captures the energy baseline

	// Drift to 1% (above EnergyWarn=0.2%, below EnergyCrit=2%) and hold.
	drifted := base * (1 + 0.01)
	total := 0
	for s := int64(2); s <= 50; s++ {
		for _, a := range r.Eval(healthySample(s, drifted)) {
			if a.Monitor != "energy-drift" {
				t.Fatalf("unexpected monitor fired: %+v", a)
			}
			if a.Severity != SevWarn {
				t.Fatalf("severity %v, want warn", a.Severity)
			}
			total++
		}
	}
	if total != 1 {
		t.Fatalf("warn fired %d times for one sustained crossing, want exactly 1", total)
	}
}

// TestEscalationAndRearm: warn -> crit escalation fires a second alert;
// dropping below the re-arm threshold silently resets, and a fresh
// crossing fires again.
func TestEscalationAndRearm(t *testing.T) {
	r := New(DefaultConfig())
	base := -1000.0
	r.Eval(healthySample(1, base))

	fire := func(step int64, relDrift float64) []Alert {
		return r.Eval(healthySample(step, base*(1+relDrift)))
	}

	if a := fire(2, 0.005); len(a) != 1 || a[0].Severity != SevWarn {
		t.Fatalf("warn crossing: %+v", a)
	}
	if a := fire(3, 0.05); len(a) != 1 || a[0].Severity != SevCrit {
		t.Fatalf("crit escalation: %+v", a)
	}
	// Still above warn*rearm: latched, no new alert even though the value
	// dipped below crit.
	if a := fire(4, 0.005); len(a) != 0 {
		t.Fatalf("latched monitor re-fired: %+v", a)
	}
	// Retreat fully below warn*rearm (2e-3*0.8 = 1.6e-3): silent re-arm.
	if a := fire(5, 1e-4); len(a) != 0 {
		t.Fatalf("re-arm must be silent: %+v", a)
	}
	if r.Worst() != SevOK {
		t.Fatalf("monitor did not re-arm: worst=%v", r.Worst())
	}
	// A fresh crossing fires again.
	if a := fire(6, 0.005); len(a) != 1 || a[0].Severity != SevWarn {
		t.Fatalf("re-armed monitor silent on new crossing: %+v", a)
	}
	if r.Fired(SevWarn) != 2 || r.Fired(SevCrit) != 1 {
		t.Errorf("lifetime counts warn=%d crit=%d, want 2/1", r.Fired(SevWarn), r.Fired(SevCrit))
	}
}

// TestOscillationInsideHysteresisBand: bouncing between the threshold and
// the re-arm level must not flood the ring — that is the point of
// hysteresis.
func TestOscillationInsideHysteresisBand(t *testing.T) {
	cfg := DefaultConfig()
	r := New(cfg)
	base := -1000.0
	r.Eval(healthySample(1, base))
	fired := 0
	for s := int64(2); s <= 100; s++ {
		rel := 0.0019 // between warn*rearm (0.0016) and warn (0.002)
		if s%2 == 0 {
			rel = 0.0021 // just above warn
		}
		fired += len(r.Eval(healthySample(s, base*(1+rel))))
	}
	if fired != 1 {
		t.Fatalf("oscillation inside the hysteresis band fired %d alerts, want 1", fired)
	}
}

// TestFallingMonitorHeadroom: the overflow-headroom monitor alerts when
// the value drops (HigherBad=false) and re-arms when it recovers past
// threshold/rearm.
func TestFallingMonitorHeadroom(t *testing.T) {
	r := New(DefaultConfig()) // warn at 8 bits, crit at 2
	s := healthySample(1, -1000)
	r.Eval(s)

	shot := func(step int64, bits float64) []Alert {
		smp := healthySample(step, -1000)
		smp.HeadroomBits = bits
		return r.Eval(smp)
	}
	if a := shot(2, 6); len(a) != 1 || a[0].Severity != SevWarn || a[0].Monitor != "overflow-headroom" {
		t.Fatalf("headroom warn: %+v", a)
	}
	if a := shot(3, 1); len(a) != 1 || a[0].Severity != SevCrit {
		t.Fatalf("headroom crit: %+v", a)
	}
	// Recovery to 9 bits is still below warn/rearm = 10: stays latched.
	if a := shot(4, 9); len(a) != 0 {
		t.Fatalf("latched falling monitor re-fired: %+v", a)
	}
	// 9 > crit/rearm = 2.5 but still <= warn/rearm, so the latch relaxes
	// from crit to warn without firing.
	if r.Worst() != SevWarn {
		t.Fatalf("latched level %v, want warn", r.Worst())
	}
	// Full recovery re-arms; next dip fires again.
	shot(5, 30)
	if a := shot(6, 6); len(a) != 1 || a[0].Severity != SevWarn {
		t.Fatalf("re-armed falling monitor silent: %+v", a)
	}
}

// TestAlertOrdering: alerts fired by one sample are ranked most severe
// first, with ties keeping monitor registration order.
func TestAlertOrdering(t *testing.T) {
	r := New(DefaultConfig())
	r.Eval(healthySample(1, -1000))

	bad := healthySample(2, -1000*(1+0.005)) // energy: warn
	bad.HeadroomBits = 1                     // headroom: crit
	bad.Drift = 0.7                          // slack 0.7: warn
	alerts := r.Eval(bad)
	if len(alerts) != 3 {
		t.Fatalf("got %d alerts, want 3: %+v", len(alerts), alerts)
	}
	if alerts[0].Monitor != "overflow-headroom" || alerts[0].Severity != SevCrit {
		t.Fatalf("most severe alert must lead: %+v", alerts)
	}
	// The two warns keep registration order: energy-drift before
	// migration-slack.
	if alerts[1].Monitor != "energy-drift" || alerts[2].Monitor != "migration-slack" {
		t.Fatalf("warn tie broke registration order: %+v", alerts)
	}
}

func TestAlertRingBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAlerts = 4
	r := New(cfg)
	r.Eval(healthySample(1, -1000))
	// Alternate a full re-arm and a crossing: every crossing fires.
	for s := int64(2); s <= 41; s++ {
		smp := healthySample(s, -1000)
		if s%2 == 0 {
			smp.HeadroomBits = 6
		}
		r.Eval(smp)
	}
	alerts := r.Alerts()
	if len(alerts) != 4 {
		t.Fatalf("ring holds %d alerts, want capacity 4", len(alerts))
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].Step < alerts[i-1].Step {
			t.Fatal("ring not oldest-first")
		}
	}
	if r.Fired(SevWarn) != 20 {
		t.Errorf("lifetime warn count %d survives eviction, want 20", r.Fired(SevWarn))
	}
}

func TestAbsentValuesSkipped(t *testing.T) {
	r := New(DefaultConfig())
	// A sample with nothing present must evaluate no monitor.
	if a := r.Eval(Sample{Step: 1}); len(a) != 0 {
		t.Fatalf("empty sample fired: %+v", a)
	}
	st := r.Status("test/v0")
	for _, m := range st.Monitors {
		if m.Seen {
			t.Errorf("monitor %q claims to have seen a value", m.Name)
		}
	}
}

func TestDisableEnergyDropsMonitor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableEnergy = true
	r := New(cfg)
	// A wild energy swing must not fire anything.
	r.Eval(healthySample(1, -1000))
	if a := r.Eval(healthySample(2, -2)); len(a) != 0 {
		t.Fatalf("disabled energy monitor fired: %+v", a)
	}
	for _, m := range r.Status("test/v0").Monitors {
		if m.Name == "energy-drift" {
			t.Fatal("energy monitor present despite DisableEnergy")
		}
	}
}

// TestStatusJSON: the /healthz document marshals with stable severity
// names and carries the schema string.
func TestStatusJSON(t *testing.T) {
	r := New(DefaultConfig())
	r.Eval(healthySample(1, -1000))
	smp := healthySample(2, -1000)
	smp.HeadroomBits = 1
	r.Eval(smp)

	raw, err := json.Marshal(r.Status("anton-obs/test"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Worst  string `json:"status"`
		Alerts []struct {
			Monitor  string `json:"monitor"`
			Severity string `json:"severity"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "anton-obs/test" {
		t.Errorf("schema %q", doc.Schema)
	}
	if doc.Worst != "critical" {
		t.Errorf("status %q, want critical", doc.Worst)
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0].Severity != "critical" {
		t.Errorf("alerts: %+v", doc.Alerts)
	}
}

// TestRetryStormMonitor: the transport retransmit ratio is absent on a
// non-sharded run (HaveRetry false → silent), warns past RetryWarn and
// latches critical past RetryCrit.
func TestRetryStormMonitor(t *testing.T) {
	r := New(DefaultConfig())
	s := healthySample(1, -1000.0)
	if alerts := r.Eval(s); len(alerts) != 0 {
		t.Fatalf("sample without retry data fired %v", alerts)
	}

	s.Step, s.HaveRetry, s.RetryRate = 2, true, 0.1
	if alerts := r.Eval(s); len(alerts) != 0 {
		t.Fatalf("quiet transport fired %v", alerts)
	}

	s.Step, s.RetryRate = 3, 0.8 // past the 0.5 warn default
	alerts := r.Eval(s)
	if len(alerts) != 1 || alerts[0].Monitor != "retry-storm" || alerts[0].Severity != SevWarn {
		t.Fatalf("retry rate 0.8 fired %v, want one retry-storm warn", alerts)
	}

	s.Step, s.RetryRate = 4, 3.0 // past the 2.0 crit default
	alerts = r.Eval(s)
	if len(alerts) != 1 || alerts[0].Severity != SevCrit {
		t.Fatalf("retry rate 3.0 fired %v, want one critical", alerts)
	}
	if r.Worst() != SevCrit {
		t.Errorf("worst = %v, want critical", r.Worst())
	}
}

// TestRetryThresholdDefaulting: a zero-valued Config must not turn the
// retry-storm monitor into a hair trigger — New substitutes the default
// thresholds like it does for Rearm and MaxAlerts.
func TestRetryThresholdDefaulting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryWarn, cfg.RetryCrit = 0, 0 // pre-retry-monitor configs have these zero
	r := New(cfg)
	s := healthySample(1, -1000.0)
	s.HaveRetry, s.RetryRate = true, 0.1
	if alerts := r.Eval(s); len(alerts) != 0 {
		t.Fatalf("zero-config retry thresholds fired %v", alerts)
	}
}
