package obs

import (
	"encoding/json"
	"testing"
)

// fillSteps pushes n synthetic steps through a tracer: one integration
// phase call, one migration call, and one worker tally per step.
func fillSteps(t *Tracer, n int) {
	for s := int64(1); s <= int64(n); s++ {
		t.AddPhase(PhaseIntegration, 1000+s)
		t.AddPhase(PhaseMigration, 10)
		t.AddWorker(0, 500, 3)
		t.StepDone(s)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(64)
	fillSteps(tr, 100) // 4 spans/step (2 phase + step + worker) -> overflow
	if tr.Dropped() == 0 {
		t.Fatal("expected ring eviction after overfilling")
	}
	spans := tr.Spans()
	if len(spans) != 64 {
		t.Fatalf("ring holds %d spans, want capacity 64", len(spans))
	}
	// Oldest-first: steps must be non-decreasing across the ring.
	for i := 1; i < len(spans); i++ {
		if spans[i].Step < spans[i-1].Step {
			t.Fatalf("ring order broken: span %d step %d after step %d",
				i, spans[i].Step, spans[i-1].Step)
		}
	}
	// The newest span must belong to the final step.
	if last := spans[len(spans)-1].Step; last != 100 {
		t.Errorf("newest span from step %d, want 100", last)
	}
}

func TestTracerStepLayout(t *testing.T) {
	tr := NewTracer(256)
	var w [NumPhases]float64
	w[PhaseIntegration] = 3
	w[PhaseMigration] = 1
	tr.SetStepLayout(w)

	tr.AddPhase(PhaseIntegration, 100)
	tr.AddPhase(PhaseMigration, 50)
	tr.StepDone(1)

	var integ, mig *Span
	spans := tr.Spans()
	for i := range spans {
		switch spans[i].Name {
		case PhaseIntegration.String():
			integ = &spans[i]
		case PhaseMigration.String():
			mig = &spans[i]
		}
	}
	if integ == nil || mig == nil {
		t.Fatal("phase spans missing")
	}
	if integ.Dur != 3*mig.Dur {
		t.Errorf("slot widths %d vs %d, want 3:1 split", integ.Dur, mig.Dur)
	}
	if integ.Dur+mig.Dur > StepVirtualNs {
		t.Errorf("slots overflow the step window: %d", integ.Dur+mig.Dur)
	}
	if integ.WallNs != 100 || mig.WallNs != 50 {
		t.Errorf("measured wall times not carried: %d, %d", integ.WallNs, mig.WallNs)
	}
	// Second step lands one full virtual window later.
	tr.AddPhase(PhaseIntegration, 100)
	tr.StepDone(2)
	for _, s := range tr.Spans() {
		if s.Step == 2 && s.Name == PhaseIntegration.String() {
			if s.TS != StepVirtualNs+integ.TS {
				t.Errorf("step 2 span at ts %d, want %d", s.TS, StepVirtualNs+integ.TS)
			}
		}
	}
}

func TestTracerPPIPSharesMatchSlot(t *testing.T) {
	tr := NewTracer(64)
	tr.AddPhase(PhasePairMatch, 100)
	tr.AddWorker(0, 70, 2)
	tr.AddWorker(1, 60, 2)
	tr.StepDone(1)
	var match Span
	workers := 0
	for _, s := range tr.Spans() {
		if s.Name == PhasePairMatch.String() {
			match = s
		}
		if s.Tid >= TidWorkerBase {
			workers++
			if s.Dur != tr.slots[PhasePairPPIP] {
				t.Errorf("worker span dur %d, want PPIP slot %d", s.Dur, tr.slots[PhasePairPPIP])
			}
		}
	}
	if workers != 2 {
		t.Fatalf("got %d worker spans, want 2", workers)
	}
	if tr.offsets[PhasePairPPIP] != tr.offsets[PhasePairMatch] ||
		tr.slots[PhasePairPPIP] != tr.slots[PhasePairMatch] {
		t.Error("PPIP slot must alias the match slot (nested phase)")
	}
	if match.Calls != 1 {
		t.Errorf("match span calls %d, want 1", match.Calls)
	}
}

// TestTracerExportValid: the exported document must parse as Chrome
// trace-event JSON with non-negative, monotonically non-decreasing
// timestamps and the schema version in otherData.
func TestTracerExportValid(t *testing.T) {
	tr := NewTracer(512)
	tr.EnableNodeLanes(10)
	tr.SetNodeSchedule(
		[]string{"node (0,0,0)", "node (1,0,0)"},
		[]NodeSpan{
			{Name: "compute", Node: 0, Tid: TidNodeCompute, OffsetNs: 0, DurNs: 400_000, ModelNs: 123},
			{Name: "comm", Node: 1, Tid: TidNodeComm, OffsetNs: 100_000, DurNs: 200_000, ModelNs: 456},
		}, 1)
	fillSteps(tr, 20)

	raw, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData["schemaVersion"] != SchemaVersion {
		t.Errorf("schemaVersion %q, want %q", doc.OtherData["schemaVersion"], SchemaVersion)
	}
	lastTS := -1.0
	xEvents, mEvents := 0, 0
	nodePids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			mEvents++
			continue
		case "X":
			xEvents++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp %f on %q", ev.TS, ev.Name)
		}
		if ev.TS < lastTS {
			t.Fatalf("timestamps not monotonic: %f after %f", ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.Pid >= PidNodeBase {
			nodePids[ev.Pid] = true
		}
	}
	if xEvents == 0 || mEvents == 0 {
		t.Fatalf("export missing events: %d X, %d M", xEvents, mEvents)
	}
	if len(nodePids) != 2 {
		t.Errorf("node lanes present for %d pids, want 2", len(nodePids))
	}
	// Round-trip: re-marshal and parse again (verify.sh automates this on
	// the shipped artifact too).
	re, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(re, &doc); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
}

// TestTracerDeterministicTimestamps: structural span fields (name, lane,
// virtual timestamps) are identical across two runs even when measured
// wall times differ — the core determinism property of virtual time.
func TestTracerDeterministicTimestamps(t *testing.T) {
	run := func(wallScale int64) []Span {
		tr := NewTracer(256)
		for s := int64(1); s <= 10; s++ {
			tr.AddPhase(PhaseIntegration, wallScale*s)
			tr.AddPhase(PhasePairMatch, wallScale*2*s)
			tr.AddWorker(0, wallScale, 1)
			tr.StepDone(s)
		}
		return tr.Spans()
	}
	a, b := run(100), run(777) // different "wall clocks"
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Pid != b[i].Pid || a[i].Tid != b[i].Tid ||
			a[i].TS != b[i].TS || a[i].Dur != b[i].Dur || a[i].Step != b[i].Step {
			t.Fatalf("structural span %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
