package gomodel

import (
	"math"
	"testing"

	"anton/internal/analysis"
	"anton/internal/system"
	"anton/internal/vec"
)

// nativeFold builds a compact synthetic fold (the CA trace of a small
// synthetic protein).
func nativeFold(t *testing.T, nRes int) []vec.V3 {
	t.Helper()
	// Use the protein builder's CA positions: build a protein topology and
	// pull out the CA atoms (template index 2 of each residue).
	s, err := system.Build(system.Spec{
		Name: "fold", TotalAtoms: nRes*system.AtomsPerResidue + 150, Side: 80,
		Cutoff: 10, Mesh: 32, ProteinAtoms: nRes * system.AtomsPerResidue, Model: 0, Seed: 11,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var cas []vec.V3
	for i := 0; i < nRes; i++ {
		cas = append(cas, s.R[i*system.AtomsPerResidue+2])
	}
	return cas
}

func TestModelConstruction(t *testing.T) {
	native := nativeFold(t, 27)
	m, err := New(native, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Contacts) < 10 {
		t.Errorf("too few native contacts: %d", len(m.Contacts))
	}
	if _, err := New(native[:2], 8); err == nil {
		t.Error("2-bead model accepted")
	}
	if _, err := New(native, 0.1); err == nil {
		t.Error("contactless model accepted")
	}
}

func TestForcesAreGradient(t *testing.T) {
	native := nativeFold(t, 12)
	m, err := New(native, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	r := append([]vec.V3(nil), native...)
	// Perturb slightly off the native minimum.
	for i := range r {
		r[i] = r[i].Add(vec.V3{X: 0.1 * float64(i%3), Y: -0.05, Z: 0.07})
	}
	f := make([]vec.V3, len(r))
	m.Forces(r, f)
	const h = 1e-6
	scratch := make([]vec.V3, len(r))
	for _, a := range []int{0, 5, 11} {
		for c := 0; c < 3; c++ {
			rp := append([]vec.V3(nil), r...)
			rm := append([]vec.V3(nil), r...)
			rp[a] = rp[a].SetComp(c, rp[a].Comp(c)+h)
			rm[a] = rm[a].SetComp(c, rm[a].Comp(c)-h)
			want := -(m.Forces(rp, scratch) - m.Forces(rm, scratch)) / (2 * h)
			if math.Abs(f[a].Comp(c)-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("bead %d comp %d: force %g vs numerical %g", a, c, f[a].Comp(c), want)
			}
		}
	}
}

func TestNativeIsMinimum(t *testing.T) {
	native := nativeFold(t, 20)
	m, _ := New(native, 8.0)
	f := make([]vec.V3, len(native))
	e0 := m.Forces(native, f)
	// Random perturbations raise the energy.
	for trial := 0; trial < 5; trial++ {
		r := append([]vec.V3(nil), native...)
		for i := range r {
			r[i] = r[i].Add(vec.V3{
				X: 0.4 * math.Sin(float64(i*trial+1)),
				Y: 0.4 * math.Cos(float64(2*i+trial)),
				Z: 0.3 * math.Sin(float64(3*i-trial)),
			})
		}
		if e := m.Forces(r, f); e <= e0 {
			t.Errorf("trial %d: perturbed energy %g not above native %g", trial, e, e0)
		}
	}
}

func TestColdStaysFoldedHotUnfolds(t *testing.T) {
	native := nativeFold(t, 24)
	m, err := New(native, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSim(m, 150, 1)
	cold.Step(4000)
	if q := cold.Q(); q < 0.7 {
		t.Errorf("cold run unfolded: Q=%.2f", q)
	}
	hot := NewSim(m, 1200, 2)
	hot.Step(4000)
	if q := hot.Q(); q > 0.55 {
		t.Errorf("hot run stayed folded: Q=%.2f", q)
	}
}

func TestFoldingTraceShowsTransitions(t *testing.T) {
	// Figure 7's phenomenology: at a temperature balancing the folded and
	// unfolded basins, the Q(t) trace crosses between them repeatedly.
	if testing.Short() {
		t.Skip("long folding trace")
	}
	native := nativeFold(t, 18)
	m, err := New(native, 8.5)
	if err != nil {
		t.Fatal(err)
	}
	// Scan a small temperature range to find the melting regime, as the
	// paper chose a temperature that "equally favors the folded and
	// unfolded states" experimentally.
	best := 0
	for _, T := range []float64{440, 480, 520} {
		sim := NewSim(m, T, 7)
		q := sim.FoldingTrace(150000, 400)
		n := analysis.TransitionCount(q, 0.72, 0.35)
		if n > best {
			best = n
		}
	}
	if best < 2 {
		t.Errorf("no folding/unfolding transitions observed (best %d)", best)
	}
}
