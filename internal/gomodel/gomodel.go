// Package gomodel implements a structure-based (Gō-type) coarse-grained
// protein model with Langevin dynamics. It is the workload substitute for
// the paper's Figure 7 experiment: the 236-µs all-atom gpW simulation at
// its melting temperature, which shows repeated folding and unfolding
// events. All-atom folding is not reachable in a test-scale budget on any
// engine, so — per the substitution policy in DESIGN.md — the folding
// *phenomenology* (a two-state system crossing between a folded basin,
// high Q, and an unfolded basin, low Q, at a temperature chosen to
// balance the two) is reproduced with a Gō model whose native structure
// is the synthetic gpW fold.
package gomodel

import (
	"fmt"
	"math"
	"math/rand"

	"anton/internal/analysis"
	"anton/internal/ff"
	"anton/internal/vec"
)

// Model is a one-bead-per-residue Gō model.
type Model struct {
	Native   []vec.V3 // native bead positions
	Contacts [][2]int // native contact pairs
	contactR []float64

	BondK    float64 // chain connectivity spring, kcal/mol/Å^2
	BondR    float64 // chain spacing, Å
	EpsGo    float64 // native contact well depth, kcal/mol
	RepSigma float64 // excluded-volume radius for non-native pairs, Å
	Mass     float64 // bead mass, amu
}

// New builds a Gō model from a native structure (e.g. the CA trace of a
// synthetic protein). Contacts are pairs within contactCutoff with
// sequence separation >= 3.
func New(native []vec.V3, contactCutoff float64) (*Model, error) {
	if len(native) < 4 {
		return nil, fmt.Errorf("gomodel: need at least 4 beads, got %d", len(native))
	}
	m := &Model{
		Native:   append([]vec.V3(nil), native...),
		Contacts: analysis.NativeContacts(native, contactCutoff, 3),
		BondK:    40,
		EpsGo:    1.2,
		RepSigma: 4.0,
		Mass:     110, // average residue mass
	}
	if len(m.Contacts) == 0 {
		return nil, fmt.Errorf("gomodel: native structure has no contacts at %g Å", contactCutoff)
	}
	for _, c := range m.Contacts {
		m.contactR = append(m.contactR, vec.Dist(native[c[0]], native[c[1]]))
	}
	m.BondR = vec.Dist(native[0], native[1])
	return m, nil
}

// isContact reports whether (i, j) is a native contact (i < j).
func (m *Model) contactIndex() map[[2]int]int {
	idx := make(map[[2]int]int, len(m.Contacts))
	for k, c := range m.Contacts {
		idx[c] = k
	}
	return idx
}

// Forces evaluates the Gō potential: chain springs, native 12-10 wells
// and non-native repulsion. Returns the potential energy.
func (m *Model) Forces(r []vec.V3, f []vec.V3) float64 {
	for i := range f {
		f[i] = vec.Zero
	}
	e := 0.0
	// Chain connectivity.
	for i := 0; i+1 < len(r); i++ {
		d := r[i+1].Sub(r[i])
		dist := d.Norm()
		dr := dist - m.BondR
		e += m.BondK * dr * dr
		fv := d.Scale(2 * m.BondK * dr / dist)
		f[i] = f[i].Add(fv)
		f[i+1] = f[i+1].Sub(fv)
	}
	// Native contacts: 12-10 potential with minimum at the native
	// distance; non-native: soft repulsion.
	cIdx := m.contactIndex()
	n := len(r)
	for i := 0; i < n; i++ {
		for j := i + 3; j < n; j++ {
			d := r[i].Sub(r[j])
			r2 := d.Norm2()
			if k, ok := cIdx[[2]int{i, j}]; ok {
				r0 := m.contactR[k]
				s2 := r0 * r0 / r2
				s10 := s2 * s2 * s2 * s2 * s2
				s12 := s10 * s2
				// V = eps*(5*s12 - 6*s10); minimum -eps at r = r0.
				e += m.EpsGo * (5*s12 - 6*s10)
				fScale := m.EpsGo * 60 * (s12 - s10) / r2
				fv := d.Scale(fScale)
				f[i] = f[i].Add(fv)
				f[j] = f[j].Sub(fv)
				continue
			}
			if r2 < m.RepSigma*m.RepSigma*4 {
				s2 := m.RepSigma * m.RepSigma / r2
				s12 := s2 * s2 * s2 * s2 * s2 * s2
				e += m.EpsGo * s12
				fv := d.Scale(m.EpsGo * 12 * s12 / r2)
				f[i] = f[i].Add(fv)
				f[j] = f[j].Sub(fv)
			}
		}
	}
	return e
}

// Sim runs Langevin dynamics on the model.
type Sim struct {
	M     *Model
	R, V  []vec.V3
	f     []vec.V3
	Dt    float64 // fs
	Gamma float64 // friction, 1/fs
	T     float64 // temperature, K
	rng   *rand.Rand
	step  int
}

// NewSim starts from the native structure with Maxwell velocities.
func NewSim(m *Model, temperature float64, seed int64) *Sim {
	s := &Sim{
		M:     m,
		R:     append([]vec.V3(nil), m.Native...),
		V:     make([]vec.V3, len(m.Native)),
		f:     make([]vec.V3, len(m.Native)),
		Dt:    10, // coarse-grained beads support long steps
		Gamma: 0.001,
		T:     temperature,
		rng:   rand.New(rand.NewSource(seed)),
	}
	sd := math.Sqrt(ff.KB * temperature / m.Mass * ff.ForceToAccel)
	for i := range s.V {
		s.V[i] = vec.V3{X: sd * s.rng.NormFloat64(), Y: sd * s.rng.NormFloat64(), Z: sd * s.rng.NormFloat64()}
	}
	m.Forces(s.R, s.f)
	return s
}

// Step advances n Langevin (BAOAB-style) steps.
func (s *Sim) Step(n int) {
	m := s.M
	dt := s.Dt
	c1 := math.Exp(-s.Gamma * dt)
	c2 := math.Sqrt((1 - c1*c1) * ff.KB * s.T / m.Mass * ff.ForceToAccel)
	for it := 0; it < n; it++ {
		// B: half kick.
		for i := range s.R {
			s.V[i] = s.V[i].Add(s.f[i].Scale(ff.ForceToAccel / m.Mass * dt / 2))
		}
		// A: half drift.
		for i := range s.R {
			s.R[i] = s.R[i].Add(s.V[i].Scale(dt / 2))
		}
		// O: friction + noise.
		for i := range s.R {
			s.V[i] = s.V[i].Scale(c1).Add(vec.V3{
				X: c2 * s.rng.NormFloat64(),
				Y: c2 * s.rng.NormFloat64(),
				Z: c2 * s.rng.NormFloat64(),
			})
		}
		// A: half drift.
		for i := range s.R {
			s.R[i] = s.R[i].Add(s.V[i].Scale(dt / 2))
		}
		// B: half kick with fresh forces.
		m.Forces(s.R, s.f)
		for i := range s.R {
			s.V[i] = s.V[i].Add(s.f[i].Scale(ff.ForceToAccel / m.Mass * dt / 2))
		}
		s.step++
	}
}

// Q returns the current native-contact fraction.
func (s *Sim) Q() float64 {
	return analysis.ContactFraction(s.M.Native, s.R, s.M.Contacts, 1.3)
}

// Steps returns the completed step count.
func (s *Sim) Steps() int { return s.step }

// FoldingTrace runs the simulation, sampling Q every sampleEvery steps,
// and returns the Q(t) series — the Figure 7 trace.
func (s *Sim) FoldingTrace(totalSteps, sampleEvery int) []float64 {
	var q []float64
	for done := 0; done < totalSteps; done += sampleEvery {
		s.Step(sampleEvery)
		q = append(q, s.Q())
	}
	return q
}
